package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/cryptoutil"
	"repro/internal/provgraph"
	"repro/internal/seclog"
	"repro/internal/types"
)

// Failure records one provable problem found while auditing a node's log.
// Any failure concerning host(v) makes microquery report red(v) (§5.5).
type Failure struct {
	Node   types.NodeID
	Seq    uint64 // log position, 0 if not entry-specific
	Reason string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s@%d: %s", f.Node, f.Seq, f.Reason)
}

// Auditor verifies retrieved log segments and replays them through the
// graph-construction algorithm, accumulating one provenance graph across
// all audited nodes (the querier's Gν(ε)). It also cross-checks the chain
// positions that peers vouch for against the chains the audited nodes
// present, which is what exposes equivocation (§5.5's consistency check).
//
// Auditing one node is split into two phases so that many nodes can be
// processed concurrently without perturbing any deterministic output:
//
//   - Prepare — verify the segment against its authenticator, re-verify
//     every embedded peer signature and checkpoint digest, and replay the
//     entries through a fresh replica of the node's deterministic machine,
//     recording the machine outputs. Prepare touches only thread-safe state
//     (the directory, the verification cache, atomic Stats counters) and may
//     run on any number of goroutines, one node per goroutine.
//   - Commit — apply the prepared op stream to the shared provenance graph,
//     merge failures and implied chain commitments, and run the
//     equivocation cross-checks. Commits are serial and ordered by the
//     caller, so the graph, the failure list, and every metric are
//     bit-identical to a fully sequential audit of the same nodes in the
//     same order.
//
// Replay is the sequential convenience: Prepare immediately followed by
// Commit. All Commit-side methods (and everything else on Auditor) must be
// called from a single goroutine.
type Auditor struct {
	Builder *provgraph.Builder
	Stats   *cryptoutil.Stats

	cfg     Config
	suite   cryptoutil.Suite
	dir     *Directory
	factory types.MachineFactory

	covered  map[types.NodeID]*auditedNode
	implied  map[types.NodeID]map[uint64]*impliedCommit
	failures []Failure
	endTimes map[types.NodeID]types.Time
}

type auditedNode struct {
	from, to uint64
	hashes   map[uint64][]byte // seq -> h_seq
	sent     map[types.MessageID]*sentEnvelope
}

type sentEnvelope struct {
	msgs     []types.Message
	seq      uint64
	t        types.Time
	prevHash []byte
}

// impliedCommit is a chain position another node vouches for: an envelope
// or ack signature embedded in an audited log.
type impliedCommit struct {
	hash     []byte
	t        types.Time
	reporter types.NodeID
	msgs     []types.Message // messages explaining the commitment, if any
}

// NewAuditor creates an auditor. factory builds the deterministic state
// machine used for replay; maint, when non-nil, excuses unacked sends whose
// loss was reported (§5.4).
func NewAuditor(cfg Config, dir *Directory, factory types.MachineFactory, maint *Maintainer) *Auditor {
	b := provgraph.NewBuilder(factory, cfg.Tprop)
	if maint != nil {
		b.MissedAckKnown = maint.WasNotified
	}
	return &Auditor{
		Builder:  b,
		Stats:    new(cryptoutil.Stats),
		cfg:      cfg,
		suite:    cfg.suite(),
		dir:      dir,
		factory:  factory,
		covered:  make(map[types.NodeID]*auditedNode),
		implied:  make(map[types.NodeID]map[uint64]*impliedCommit),
		endTimes: make(map[types.NodeID]types.Time),
	}
}

// Failures returns every problem found so far.
func (a *Auditor) Failures() []Failure { return a.failures }

// NodeFailed reports whether any failure implicates node id.
func (a *Auditor) NodeFailed(id types.NodeID) bool {
	for _, f := range a.failures {
		if f.Node == id {
			return true
		}
	}
	return false
}

// Audited reports whether node id's log has been replayed.
func (a *Auditor) Audited(id types.NodeID) bool {
	_, ok := a.covered[id]
	return ok
}

// ---------------------------------------------------------------------------
// Prepared audits: the op stream recorded by the parallel phase.

// opKind discriminates replayOps.
type opKind uint8

const (
	opFail        opKind = iota // record a failure
	opEvent                     // apply a GCA event with precomputed outputs
	opSeedExist                 // seed an exist vertex from a checkpoint item
	opSeedBelieve               // seed a believe vertex from a checkpoint item
	opImplied                   // record an implied chain commitment for a peer
)

// replayOp is one deferred commit-side action, recorded by Prepare in
// exactly the order the sequential auditor would have performed it.
type replayOp struct {
	kind opKind

	fail Failure // opFail

	ev   types.Event    // opEvent
	outs []types.Output // opEvent: replica machine outputs

	node   types.NodeID // opSeed*/opImplied target
	origin types.NodeID // opSeedBelieve
	tup    types.Tuple  // opSeed*
	t      types.Time   // opSeed*
	seq    uint64       // opImplied
	commit *impliedCommit
}

// PreparedAudit is the result of the thread-safe phase of one node's audit:
// everything cryptographic and machine-deterministic is done; what remains
// is the serial merge into the shared graph.
type PreparedAudit struct {
	Node types.NodeID

	resp    *RetrieveResponse
	err     error
	ops     []replayOp
	audited *auditedNode
	machine types.Machine
	endTime types.Time
}

// Err returns the verification error Prepare recorded, if any (the same
// error Replay would have returned).
func (p *PreparedAudit) Err() error { return p.err }

// prep is the Prepare-phase accumulator. Its fail/handle methods mirror the
// sequential auditor's, but record ops instead of mutating shared state.
type prep struct {
	a       *Auditor
	node    types.NodeID
	ops     []replayOp
	audited *auditedNode
	machine types.Machine
	endTime types.Time

	// cur, when non-nil, runs this prep in cached mode: machine outputs
	// come from the cached op stream instead of a replica machine, and
	// every re-derived op must match its cached counterpart (see
	// auditcache.go). Any failure or divergence poisons the cursor and the
	// caller falls back to a fresh replay.
	cur *cacheCursor
}

func (p *prep) fail(node types.NodeID, seq uint64, format string, args ...any) {
	if p.cur != nil {
		// A cached entry claims a clean replay; a failure on the same
		// bytes means the entry cannot be trusted. Record nothing — the
		// fresh replay will re-derive (and this time keep) the failure.
		p.cur.bad = true
		return
	}
	p.ops = append(p.ops, replayOp{kind: opFail,
		fail: Failure{Node: node, Seq: seq, Reason: fmt.Sprintf(format, args...)}})
}

// seedExist records a checkpoint-seeded exist vertex; in cached mode it also
// cross-checks the cached op.
func (p *prep) seedExist(node types.NodeID, tup types.Tuple, t types.Time) {
	if p.cur != nil {
		c := p.cur.next(opSeedExist)
		if c == nil || c.node != node || !c.tup.Equal(tup) || c.t != t {
			p.cur.bad = true
			return
		}
	}
	p.ops = append(p.ops, replayOp{kind: opSeedExist, node: node, tup: tup, t: t})
}

// seedBelieve records a checkpoint-seeded believe vertex; in cached mode it
// also cross-checks the cached op.
func (p *prep) seedBelieve(node, origin types.NodeID, tup types.Tuple, t types.Time) {
	if p.cur != nil {
		c := p.cur.next(opSeedBelieve)
		if c == nil || c.node != node || c.origin != origin || !c.tup.Equal(tup) || c.t != t {
			p.cur.bad = true
			return
		}
	}
	p.ops = append(p.ops, replayOp{kind: opSeedBelieve, node: node, origin: origin, tup: tup, t: t})
}

// implied records a re-verified implied chain commitment. The recorded op is
// always built from the re-derived values — in cached mode the cached copy
// is only compared, never adopted, so a poisoned entry cannot plant a
// commitment the segment does not prove.
func (p *prep) implied(node types.NodeID, seq uint64, ic *impliedCommit) {
	if p.cur != nil {
		if !checkImplied(p.cur.next(opImplied), node, seq, ic) {
			p.cur.bad = true
			return
		}
	}
	p.ops = append(p.ops, replayOp{kind: opImplied, node: node, seq: seq, commit: ic})
}

// machineFor lazily creates the replica machine, mirroring the sequential
// Builder.MachineFor.
func (p *prep) machineFor() types.Machine {
	if p.machine == nil {
		p.machine = p.a.factory(p.node)
	}
	return p.machine
}

// handleEvent mirrors Builder.HandleEvent: it steps the replica machine for
// machine-bound events and records the event with its outputs for the
// commit phase.
func (p *prep) handleEvent(ev types.Event) {
	var outs []types.Output
	if p.cur != nil {
		c := p.cur.next(opEvent)
		if c == nil {
			return
		}
		if provgraph.StepsMachine(ev) {
			p.cur.needMachine = true
			outs = c.outs
		} else if len(c.outs) != 0 {
			p.cur.bad = true // non-machine events never produce outputs
			return
		}
	} else if provgraph.StepsMachine(ev) {
		outs = p.machineFor().Step(ev)
	}
	p.ops = append(p.ops, replayOp{kind: opEvent, ev: ev, outs: outs})
}

// Prepare runs the parallel phase of auditing one node: it verifies the
// retrieved segment against the evidence and replays it through a replica
// machine, recording every commit-side action. Prepare does not read or
// write any Auditor state that Commit mutates, so distinct nodes may be
// prepared concurrently (and concurrently with commits of other nodes).
func (a *Auditor) Prepare(node types.NodeID, resp *RetrieveResponse, evidence seclog.Authenticator) *PreparedAudit {
	p := &prep{a: a, node: node}
	out := &PreparedAudit{Node: node, resp: resp}
	seg := resp.Segment
	if seg == nil {
		p.fail(node, 0, "returned a response without a segment")
		out.ops = p.ops
		out.err = fmt.Errorf("core: retrieve response without a segment")
		return out
	}
	if seg.Node != node {
		p.fail(node, 0, "returned a segment for %s", seg.Node)
		out.ops = p.ops
		out.err = fmt.Errorf("core: segment node mismatch")
		return out
	}
	pub, err := a.dir.Key(node)
	if err != nil {
		out.err = err
		return out
	}
	// Pick the freshest valid commitment to verify against: the new
	// authenticator if it checks out, otherwise the evidence we held.
	auth := evidence
	if resp.NewAuth != nil && resp.NewAuth.Node == node && resp.NewAuth.Seq >= auth.Seq {
		a.Stats.CountVerify()
		if resp.NewAuth.VerifyCounted(a.Stats, pub) {
			auth = *resp.NewAuth
		} else {
			p.fail(node, resp.NewAuth.Seq, "returned an invalid fresh authenticator")
		}
	}
	hashes, err := seg.VerifyAgainst(a.suite, a.Stats, pub, auth)
	if err != nil {
		p.fail(node, auth.Seq, "log does not match authenticator: %v", err)
		out.ops = p.ops
		out.err = err
		return out
	}
	// Evidence older than the fresh authenticator must also lie on this
	// chain (otherwise the node forked its log).
	if evidence.Node == node && evidence.Seq != auth.Seq &&
		evidence.Seq >= seg.From && evidence.Seq <= seg.To() {
		if !bytes.Equal(hashes[evidence.Seq-seg.From], evidence.Hash) {
			p.fail(node, evidence.Seq, "evidence authenticator is not on the returned chain (fork)")
		}
	}

	p.audited = &auditedNode{from: seg.From, to: seg.To(),
		hashes: make(map[uint64][]byte), sent: make(map[types.MessageID]*sentEnvelope)}
	for i, h := range hashes {
		p.audited.hashes[seg.From+uint64(i)] = h
	}

	// Try the persistent audit cache: an unchanged segment (same node,
	// range, and head chain hash) replays to a bit-identical op stream, so
	// a validated hit skips the replica-machine replay entirely. Failures
	// recorded before this point mean the response is already suspect —
	// audit it the slow way.
	cache := a.cfg.AuditCache
	var key []byte
	if cache != nil && len(hashes) > 0 && len(p.ops) == 0 {
		key = cache.key(node, seg.From, seg.To(), hashes[len(hashes)-1])
		if hit := a.prepareFromCache(p, seg, key); hit {
			cache.hits.Add(1)
			out.ops = p.ops
			out.audited = p.audited
			out.machine = p.machine
			out.endTime = p.endTime
			return out
		}
		cache.misses.Add(1)
	}

	p.replayEntries(node, seg)

	if key != nil && cleanOps(p.ops) {
		var snapshot []byte
		if p.machine != nil {
			snapshot = p.machine.Snapshot()
		}
		cache.put(key, encodeAuditBody(p.machine != nil, snapshot, p.endTime, p.ops))
	}

	out.ops = p.ops
	out.audited = p.audited
	out.machine = p.machine
	out.endTime = p.endTime
	return out
}

// cleanOps reports whether an op stream records no failures; only clean
// replays are cached (see auditcache.go).
func cleanOps(ops []replayOp) bool {
	for i := range ops {
		if ops[i].kind == opFail {
			return false
		}
	}
	return true
}

// prepareFromCache attempts to satisfy p from the cached entry under key.
// On success p holds the validated ops, the re-derived bookkeeping, and a
// machine restored from the cached final snapshot; on any mismatch p is
// left untouched and the caller replays fresh.
func (a *Auditor) prepareFromCache(p *prep, seg *seclog.SegmentData, key []byte) bool {
	body, ok := a.cfg.AuditCache.get(key)
	if !ok {
		return false
	}
	ca, err := decodeAuditBody(body)
	if err != nil || !cleanOps(ca.ops) {
		return false
	}
	pc := &prep{a: a, node: p.node, cur: &cacheCursor{ca: ca},
		audited: &auditedNode{from: p.audited.from, to: p.audited.to,
			hashes: p.audited.hashes, sent: make(map[types.MessageID]*sentEnvelope)}}
	pc.replayEntries(p.node, seg)
	if !pc.cur.done() || pc.cur.needMachine != ca.hadMachine || pc.endTime != ca.endTime {
		return false
	}
	var m types.Machine
	if ca.hadMachine {
		m = a.factory(p.node)
		if err := m.Restore(ca.snapshot); err != nil {
			return false
		}
	}
	p.ops = pc.ops
	p.audited.sent = pc.audited.sent
	p.machine = m
	p.endTime = pc.endTime
	return true
}

// Commit applies a prepared audit to the shared graph and bookkeeping. It
// must be called from the auditor's single commit goroutine; the caller
// chooses the commit order, and the result is identical to having called
// Replay sequentially in that order.
func (a *Auditor) Commit(p *PreparedAudit) error {
	if _, ok := a.covered[p.Node]; ok {
		return nil // already replayed (one segment per node per query session)
	}
	if p.err != nil {
		a.applyOps(p.ops)
		return p.err
	}
	a.covered[p.Node] = p.audited
	a.applyOps(p.ops)
	if p.machine != nil {
		a.Builder.InstallMachine(p.Node, p.machine)
	}
	if p.endTime > a.endTimes[p.Node] {
		a.endTimes[p.Node] = p.endTime
	}
	a.crossCheck(p.Node, p.audited)
	return nil
}

func (a *Auditor) applyOps(ops []replayOp) {
	for i := range ops {
		op := &ops[i]
		switch op.kind {
		case opFail:
			a.failures = append(a.failures, op.fail)
		case opEvent:
			a.Builder.ApplyReplayed(op.ev, op.outs)
		case opSeedExist:
			a.Builder.SeedExist(op.node, op.tup, op.t)
		case opSeedBelieve:
			a.Builder.SeedBelieve(op.node, op.origin, op.tup, op.t)
		case opImplied:
			a.recordImplied(op.node, op.seq, op.commit)
		}
	}
}

// Replay verifies one retrieved segment against the evidence and replays it
// into the shared graph. A verification error means the node could not
// produce a log matching its own commitments — provable misbehavior, also
// recorded as a failure. Replay is Prepare followed immediately by Commit.
func (a *Auditor) Replay(node types.NodeID, resp *RetrieveResponse, evidence seclog.Authenticator) error {
	if _, ok := a.covered[node]; ok {
		return nil // already replayed (one segment per node per query session)
	}
	return a.Commit(a.Prepare(node, resp, evidence))
}

// replayEntries expands entries into GCA events, re-verifying embedded peer
// signatures and checkpoints along the way.
func (p *prep) replayEntries(node types.NodeID, seg *seclog.SegmentData) {
	for i, e := range seg.Entries {
		seq := seg.From + uint64(i)
		if e.T > p.endTime {
			p.endTime = e.T
		}
		switch e.Type {
		case seclog.EIns:
			p.handleEvent(types.Event{Kind: types.EvIns, Node: node, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody, Replaces: e.Replaces})
		case seclog.EDel:
			p.handleEvent(types.Event{Kind: types.EvDel, Node: node, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody})
		case seclog.ESnd:
			if len(e.Msgs) == 0 {
				p.fail(node, seq, "empty snd entry")
				continue
			}
			prev := seg.BaseHash
			if seq > seg.From {
				prev = p.audited.hashes[seq-1]
			}
			p.audited.sent[e.Msgs[0].ID()] = &sentEnvelope{msgs: e.Msgs, seq: seq, t: e.T, prevHash: prev}
			for j := range e.Msgs {
				msg := e.Msgs[j]
				if msg.Src != node {
					p.fail(node, seq, "snd entry with foreign source %s", msg.Src)
				}
				p.handleEvent(types.Event{Kind: types.EvSnd, Node: node, Time: e.T, Msg: &msg})
			}
		case seclog.ERcv:
			p.replayRcv(node, seq, e)
		case seclog.EAck:
			p.replayAck(node, seq, e)
		case seclog.ECkpt:
			p.replayCkpt(node, seq, e, i == 0)
		}
	}
}

func (p *prep) replayRcv(node types.NodeID, seq uint64, e *seclog.Entry) {
	a := p.a
	if len(e.Msgs) == 0 {
		p.fail(node, seq, "empty rcv entry")
		return
	}
	src := e.Msgs[0].Src
	// Re-verify the sender's envelope commitment (§5.4 conditions). The
	// implied chain position is also recorded for the equivocation check.
	sndEntry := &seclog.Entry{T: e.PeerTime, Type: seclog.ESnd, Msgs: e.Msgs}
	hx := seclog.ChainHash(a.suite, a.Stats, e.PeerPrevHash, sndEntry)
	implied := false
	if pub, err := a.dir.Key(src); err != nil {
		p.fail(node, seq, "rcv from unknown node %s", src)
	} else if !seclog.VerifyCommitment(a.Stats, pub, e.PeerTime, hx, e.PeerSig) {
		p.fail(node, seq, "rcv entry carries an invalid signature from %s", src)
	} else {
		implied = true
	}
	for j := range e.Msgs {
		msg := e.Msgs[j]
		if msg.Dst != node {
			p.fail(node, seq, "rcv entry with foreign destination %s", msg.Dst)
			continue
		}
		id := msg.ID()
		p.handleEvent(types.Event{Kind: types.EvRcv, Node: node, Time: e.T,
			Msg: &msg, SameBatch: j > 0})
		// The rcv entry commits the receiver to acknowledging: synthesize
		// the ack transmission (acks are implicit in the log, §5.4).
		p.handleEvent(types.Event{Kind: types.EvSnd, Node: node, Time: e.T,
			AckID: &id, AckTime: e.T})
	}
	// The implied commitment is recorded after this entry's own events: if
	// the position proves an equivocation, handle-extra-msg must see the
	// receives this very entry legitimately logged (they are evidence
	// *against the sender*, and flagging them red would accuse the honest
	// receiver — Theorem 5 forbids that).
	if implied {
		p.implied(src, e.PeerSeq, &impliedCommit{hash: hx, t: e.PeerTime, reporter: node, msgs: e.Msgs})
	}
}

func (p *prep) replayAck(node types.NodeID, seq uint64, e *seclog.Entry) {
	a := p.a
	if len(e.AckIDs) == 0 {
		p.fail(node, seq, "empty ack entry")
		return
	}
	pend := p.audited.sent[e.AckIDs[0]]
	dst := e.AckIDs[0].Dst
	if pend == nil {
		p.fail(node, seq, "ack entry without a matching snd entry")
		return
	}
	// Reconstruct the receiver's rcv entry and re-verify its signature.
	rcvEntry := &seclog.Entry{T: e.PeerTime, Type: seclog.ERcv, Msgs: pend.msgs,
		PeerPrevHash: pend.prevHash, PeerTime: pend.t, PeerSig: e.EnvSig, PeerSeq: pend.seq}
	hy := seclog.ChainHash(a.suite, a.Stats, e.PeerPrevHash, rcvEntry)
	implied := false
	if pub, err := a.dir.Key(dst); err != nil {
		p.fail(node, seq, "ack from unknown node %s", dst)
	} else if !seclog.VerifyCommitment(a.Stats, pub, e.PeerTime, hy, e.PeerSig) {
		p.fail(node, seq, "ack entry carries an invalid signature from %s", dst)
	} else {
		implied = true
	}
	for i := range e.AckIDs {
		id := e.AckIDs[i]
		p.handleEvent(types.Event{Kind: types.EvRcv, Node: node, Time: e.T,
			AckID: &id, AckTime: e.PeerTime})
	}
	// Recorded after the ack events for the same reason as in replayRcv:
	// the receive vertices the ack proves must exist before a conflict on
	// this position reaches handle-extra-msg.
	if implied {
		p.implied(dst, e.PeerSeq, &impliedCommit{hash: hy, t: e.PeerTime, reporter: node, msgs: pend.msgs})
	}
}

func (p *prep) replayCkpt(node types.NodeID, seq uint64, e *seclog.Entry, atSegmentStart bool) {
	a := p.a
	ck := e.Ckpt
	if ck == nil {
		p.fail(node, seq, "checkpoint entry without payload")
		return
	}
	if err := ck.VerifyFull(a.suite, a.Stats); err != nil {
		p.fail(node, seq, "checkpoint payload does not match digests: %v", err)
		return
	}
	if atSegmentStart {
		// Start of replay: restore the machine and seed the graph with the
		// extant tuples (their causes live in an earlier segment). In
		// cached mode the restore is deferred — the cached final snapshot
		// is restored once the whole walk validates (Prepare).
		if p.cur != nil {
			p.cur.needMachine = true
		} else if err := p.machineFor().Restore(ck.MachineState); err != nil {
			p.fail(node, seq, "checkpoint state does not restore: %v", err)
			return
		}
		for _, it := range ck.Items {
			if it.Local {
				p.seedExist(node, it.Tuple, it.Appeared)
			}
			for _, b := range it.Believed {
				p.seedBelieve(node, b.Origin, it.Tuple, b.Since)
			}
		}
		return
	}
	// Mid-segment checkpoint: the replayed machine must agree with it,
	// otherwise the node checkpointed state it never reached ("if a faulty
	// node adds a nonexistent tuple to its checkpoint, this will be
	// discovered when ... replay will begin before the checkpoint and end
	// after it", §5.6). In cached mode there is no stepped machine to
	// compare; the check passed when the entry was cached (the same bytes
	// replay to the same state), so it is safely skipped.
	if p.cur != nil {
		p.cur.needMachine = true
		return
	}
	snap := p.machineFor().Snapshot()
	a.Stats.CountHash(len(snap))
	if !bytes.Equal(a.suite.Hash(snap), ck.StateHash) {
		p.fail(node, seq, "checkpoint disagrees with replayed state")
	}
}

func (a *Auditor) recordImplied(node types.NodeID, seq uint64, c *impliedCommit) {
	m := a.implied[node]
	if m == nil {
		m = make(map[uint64]*impliedCommit)
		a.implied[node] = m
	}
	if old, ok := m[seq]; ok {
		// Two peers vouch for the same position: they must agree, or the
		// node equivocated.
		if !bytes.Equal(old.hash, c.hash) {
			a.equivocation(node, seq, old, c)
		}
		return
	}
	m[seq] = c
	// If the node is already audited, check against its presented chain.
	if audited, ok := a.covered[node]; ok {
		if h, ok := audited.hashes[seq]; ok && !bytes.Equal(h, c.hash) {
			a.equivocation(node, seq, c, c)
		}
	}
}

// crossCheck compares a freshly audited chain with every implied commitment
// collected so far.
func (a *Auditor) crossCheck(node types.NodeID, audited *auditedNode) {
	keys := make([]uint64, 0, len(a.implied[node]))
	for seq := range a.implied[node] {
		keys = append(keys, seq)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, seq := range keys {
		c := a.implied[node][seq]
		if h, ok := audited.hashes[seq]; ok && !bytes.Equal(h, c.hash) {
			a.equivocation(node, seq, c, c)
		}
	}
}

func (a *Auditor) equivocation(node types.NodeID, seq uint64, c1, c2 *impliedCommit) {
	a.failures = append(a.failures, Failure{Node: node, Seq: seq,
		Reason: fmt.Sprintf("equivocation: conflicting commitments for log position %d", seq)})
	// Surface the conflicting transmission as red send/receive vertices
	// (handle-extra-msg, Figure 11).
	for _, c := range []*impliedCommit{c1, c2} {
		for i := range c.msgs {
			a.Builder.HandleExtraMsg(&c.msgs[i])
		}
	}
}

// CheckAuthenticator cross-checks an externally collected authenticator
// (from the consistency check of §5.5) against an audited node's chain.
func (a *Auditor) CheckAuthenticator(auth seclog.Authenticator) {
	pub, err := a.dir.Key(auth.Node)
	if err != nil {
		return // unknown signer; nothing to verify
	}
	a.Stats.CountVerify()
	if !auth.VerifyCounted(a.Stats, pub) {
		return // not valid evidence
	}
	audited, ok := a.covered[auth.Node]
	if !ok {
		return
	}
	if h, ok := audited.hashes[auth.Seq]; ok && !bytes.Equal(h, auth.Hash) {
		a.failures = append(a.failures, Failure{Node: auth.Node, Seq: auth.Seq,
			Reason: "authenticator held by a peer is not on the presented chain (fork)"})
	}
}

// Finalize flags suppressed sends, missing acks, and unacknowledged
// receives at the end of the audited prefixes (quiescence check).
func (a *Auditor) Finalize() {
	a.Builder.Finalize(a.endTimes)
}

// Graph returns the reconstructed provenance graph Gν(ε).
func (a *Auditor) Graph() *provgraph.Graph { return a.Builder.G }
