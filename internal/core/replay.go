package core

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/cryptoutil"
	"repro/internal/provgraph"
	"repro/internal/seclog"
	"repro/internal/types"
)

// Failure records one provable problem found while auditing a node's log.
// Any failure concerning host(v) makes microquery report red(v) (§5.5).
type Failure struct {
	Node   types.NodeID
	Seq    uint64 // log position, 0 if not entry-specific
	Reason string
}

func (f Failure) String() string {
	return fmt.Sprintf("%s@%d: %s", f.Node, f.Seq, f.Reason)
}

// Auditor verifies retrieved log segments and replays them through the
// graph-construction algorithm, accumulating one provenance graph across
// all audited nodes (the querier's Gν(ε)). It also cross-checks the chain
// positions that peers vouch for against the chains the audited nodes
// present, which is what exposes equivocation (§5.5's consistency check).
type Auditor struct {
	Builder *provgraph.Builder
	Stats   *cryptoutil.Stats

	cfg   Config
	suite cryptoutil.Suite
	dir   *Directory

	covered  map[types.NodeID]*auditedNode
	implied  map[types.NodeID]map[uint64]*impliedCommit
	failures []Failure
	endTimes map[types.NodeID]types.Time
}

type auditedNode struct {
	from, to uint64
	hashes   map[uint64][]byte // seq -> h_seq
	sent     map[types.MessageID]*sentEnvelope
}

type sentEnvelope struct {
	msgs     []types.Message
	seq      uint64
	t        types.Time
	prevHash []byte
}

// impliedCommit is a chain position another node vouches for: an envelope
// or ack signature embedded in an audited log.
type impliedCommit struct {
	hash     []byte
	t        types.Time
	reporter types.NodeID
	msgs     []types.Message // messages explaining the commitment, if any
}

// NewAuditor creates an auditor. factory builds the deterministic state
// machine used for replay; maint, when non-nil, excuses unacked sends whose
// loss was reported (§5.4).
func NewAuditor(cfg Config, dir *Directory, factory types.MachineFactory, maint *Maintainer) *Auditor {
	b := provgraph.NewBuilder(factory, cfg.Tprop)
	if maint != nil {
		b.MissedAckKnown = maint.WasNotified
	}
	return &Auditor{
		Builder:  b,
		Stats:    new(cryptoutil.Stats),
		cfg:      cfg,
		suite:    cfg.suite(),
		dir:      dir,
		covered:  make(map[types.NodeID]*auditedNode),
		implied:  make(map[types.NodeID]map[uint64]*impliedCommit),
		endTimes: make(map[types.NodeID]types.Time),
	}
}

// Failures returns every problem found so far.
func (a *Auditor) Failures() []Failure { return a.failures }

// NodeFailed reports whether any failure implicates node id.
func (a *Auditor) NodeFailed(id types.NodeID) bool {
	for _, f := range a.failures {
		if f.Node == id {
			return true
		}
	}
	return false
}

// Audited reports whether node id's log has been replayed.
func (a *Auditor) Audited(id types.NodeID) bool {
	_, ok := a.covered[id]
	return ok
}

func (a *Auditor) fail(node types.NodeID, seq uint64, format string, args ...any) {
	a.failures = append(a.failures, Failure{Node: node, Seq: seq, Reason: fmt.Sprintf(format, args...)})
}

// Replay verifies one retrieved segment against the evidence and replays it
// into the shared graph. A verification error means the node could not
// produce a log matching its own commitments — provable misbehavior, also
// recorded as a failure.
func (a *Auditor) Replay(node types.NodeID, resp *RetrieveResponse, evidence seclog.Authenticator) error {
	if prior, ok := a.covered[node]; ok {
		_ = prior
		return nil // already replayed (one segment per node per query session)
	}
	seg := resp.Segment
	if seg.Node != node {
		a.fail(node, 0, "returned a segment for %s", seg.Node)
		return fmt.Errorf("core: segment node mismatch")
	}
	pub, err := a.dir.Key(node)
	if err != nil {
		return err
	}
	// Pick the freshest valid commitment to verify against: the new
	// authenticator if it checks out, otherwise the evidence we held.
	auth := evidence
	if resp.NewAuth != nil && resp.NewAuth.Node == node && resp.NewAuth.Seq >= auth.Seq {
		a.Stats.CountVerify()
		if resp.NewAuth.VerifyCounted(a.Stats, pub) {
			auth = *resp.NewAuth
		} else {
			a.fail(node, resp.NewAuth.Seq, "returned an invalid fresh authenticator")
		}
	}
	hashes, err := seg.VerifyAgainst(a.suite, a.Stats, pub, auth)
	if err != nil {
		a.fail(node, auth.Seq, "log does not match authenticator: %v", err)
		return err
	}
	// Evidence older than the fresh authenticator must also lie on this
	// chain (otherwise the node forked its log).
	if evidence.Node == node && evidence.Seq != auth.Seq &&
		evidence.Seq >= seg.From && evidence.Seq <= seg.To() {
		if !bytes.Equal(hashes[evidence.Seq-seg.From], evidence.Hash) {
			a.fail(node, evidence.Seq, "evidence authenticator is not on the returned chain (fork)")
		}
	}

	audited := &auditedNode{from: seg.From, to: seg.To(),
		hashes: make(map[uint64][]byte), sent: make(map[types.MessageID]*sentEnvelope)}
	for i, h := range hashes {
		audited.hashes[seg.From+uint64(i)] = h
	}
	a.covered[node] = audited

	a.replayEntries(node, seg, audited)
	a.crossCheck(node, audited)
	return nil
}

// replayEntries expands entries into GCA events, re-verifying embedded peer
// signatures and checkpoints along the way.
func (a *Auditor) replayEntries(node types.NodeID, seg *seclog.SegmentData, audited *auditedNode) {
	for i, e := range seg.Entries {
		seq := seg.From + uint64(i)
		if e.T > a.endTimes[node] {
			a.endTimes[node] = e.T
		}
		switch e.Type {
		case seclog.EIns:
			a.Builder.HandleEvent(types.Event{Kind: types.EvIns, Node: node, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody, Replaces: e.Replaces})
		case seclog.EDel:
			a.Builder.HandleEvent(types.Event{Kind: types.EvDel, Node: node, Time: e.T,
				Tuple: e.Tuple, MaybeRule: e.MaybeRule, MaybeBody: e.MaybeBody})
		case seclog.ESnd:
			if len(e.Msgs) == 0 {
				a.fail(node, seq, "empty snd entry")
				continue
			}
			prev := seg.BaseHash
			if seq > seg.From {
				prev = audited.hashes[seq-1]
			}
			audited.sent[e.Msgs[0].ID()] = &sentEnvelope{msgs: e.Msgs, seq: seq, t: e.T, prevHash: prev}
			for j := range e.Msgs {
				msg := e.Msgs[j]
				if msg.Src != node {
					a.fail(node, seq, "snd entry with foreign source %s", msg.Src)
				}
				a.Builder.HandleEvent(types.Event{Kind: types.EvSnd, Node: node, Time: e.T, Msg: &msg})
			}
		case seclog.ERcv:
			a.replayRcv(node, seq, e)
		case seclog.EAck:
			a.replayAck(node, seq, e, audited)
		case seclog.ECkpt:
			a.replayCkpt(node, seq, e, i == 0)
		}
	}
}

func (a *Auditor) replayRcv(node types.NodeID, seq uint64, e *seclog.Entry) {
	if len(e.Msgs) == 0 {
		a.fail(node, seq, "empty rcv entry")
		return
	}
	src := e.Msgs[0].Src
	// Re-verify the sender's envelope commitment (§5.4 conditions). The
	// implied chain position is also recorded for the equivocation check.
	sndEntry := &seclog.Entry{T: e.PeerTime, Type: seclog.ESnd, Msgs: e.Msgs}
	hx := seclog.ChainHash(a.suite, a.Stats, e.PeerPrevHash, sndEntry)
	if pub, err := a.dir.Key(src); err != nil {
		a.fail(node, seq, "rcv from unknown node %s", src)
	} else if !seclog.VerifyCommitment(a.Stats, pub, e.PeerTime, hx, e.PeerSig) {
		a.fail(node, seq, "rcv entry carries an invalid signature from %s", src)
	} else {
		a.recordImplied(src, e.PeerSeq, &impliedCommit{hash: hx, t: e.PeerTime, reporter: node, msgs: e.Msgs})
	}
	for j := range e.Msgs {
		msg := e.Msgs[j]
		if msg.Dst != node {
			a.fail(node, seq, "rcv entry with foreign destination %s", msg.Dst)
			continue
		}
		id := msg.ID()
		a.Builder.HandleEvent(types.Event{Kind: types.EvRcv, Node: node, Time: e.T,
			Msg: &msg, SameBatch: j > 0})
		// The rcv entry commits the receiver to acknowledging: synthesize
		// the ack transmission (acks are implicit in the log, §5.4).
		a.Builder.HandleEvent(types.Event{Kind: types.EvSnd, Node: node, Time: e.T,
			AckID: &id, AckTime: e.T})
	}
}

func (a *Auditor) replayAck(node types.NodeID, seq uint64, e *seclog.Entry, audited *auditedNode) {
	if len(e.AckIDs) == 0 {
		a.fail(node, seq, "empty ack entry")
		return
	}
	pend := audited.sent[e.AckIDs[0]]
	dst := e.AckIDs[0].Dst
	if pend == nil {
		a.fail(node, seq, "ack entry without a matching snd entry")
		return
	}
	// Reconstruct the receiver's rcv entry and re-verify its signature.
	rcvEntry := &seclog.Entry{T: e.PeerTime, Type: seclog.ERcv, Msgs: pend.msgs,
		PeerPrevHash: pend.prevHash, PeerTime: pend.t, PeerSig: e.EnvSig, PeerSeq: pend.seq}
	hy := seclog.ChainHash(a.suite, a.Stats, e.PeerPrevHash, rcvEntry)
	if pub, err := a.dir.Key(dst); err != nil {
		a.fail(node, seq, "ack from unknown node %s", dst)
	} else if !seclog.VerifyCommitment(a.Stats, pub, e.PeerTime, hy, e.PeerSig) {
		a.fail(node, seq, "ack entry carries an invalid signature from %s", dst)
	} else {
		a.recordImplied(dst, e.PeerSeq, &impliedCommit{hash: hy, t: e.PeerTime, reporter: node, msgs: pend.msgs})
	}
	for i := range e.AckIDs {
		id := e.AckIDs[i]
		a.Builder.HandleEvent(types.Event{Kind: types.EvRcv, Node: node, Time: e.T,
			AckID: &id, AckTime: e.PeerTime})
	}
}

func (a *Auditor) replayCkpt(node types.NodeID, seq uint64, e *seclog.Entry, atSegmentStart bool) {
	ck := e.Ckpt
	if ck == nil {
		a.fail(node, seq, "checkpoint entry without payload")
		return
	}
	if err := ck.VerifyFull(a.suite, a.Stats); err != nil {
		a.fail(node, seq, "checkpoint payload does not match digests: %v", err)
		return
	}
	if atSegmentStart {
		// Start of replay: restore the machine and seed the graph with the
		// extant tuples (their causes live in an earlier segment).
		if err := a.Builder.RestoreMachine(node, ck.MachineState); err != nil {
			a.fail(node, seq, "checkpoint state does not restore: %v", err)
			return
		}
		for _, it := range ck.Items {
			if it.Local {
				a.Builder.SeedExist(node, it.Tuple, it.Appeared)
			}
			for _, b := range it.Believed {
				a.Builder.SeedBelieve(node, b.Origin, it.Tuple, b.Since)
			}
		}
		return
	}
	// Mid-segment checkpoint: the replayed machine must agree with it,
	// otherwise the node checkpointed state it never reached ("if a faulty
	// node adds a nonexistent tuple to its checkpoint, this will be
	// discovered when ... replay will begin before the checkpoint and end
	// after it", §5.6).
	snap := a.Builder.MachineFor(node).Snapshot()
	a.Stats.CountHash(len(snap))
	if !bytes.Equal(a.suite.Hash(snap), ck.StateHash) {
		a.fail(node, seq, "checkpoint disagrees with replayed state")
	}
}

func (a *Auditor) recordImplied(node types.NodeID, seq uint64, c *impliedCommit) {
	m := a.implied[node]
	if m == nil {
		m = make(map[uint64]*impliedCommit)
		a.implied[node] = m
	}
	if old, ok := m[seq]; ok {
		// Two peers vouch for the same position: they must agree, or the
		// node equivocated.
		if !bytes.Equal(old.hash, c.hash) {
			a.equivocation(node, seq, old, c)
		}
		return
	}
	m[seq] = c
	// If the node is already audited, check against its presented chain.
	if audited, ok := a.covered[node]; ok {
		if h, ok := audited.hashes[seq]; ok && !bytes.Equal(h, c.hash) {
			a.equivocation(node, seq, c, c)
		}
	}
}

// crossCheck compares a freshly audited chain with every implied commitment
// collected so far.
func (a *Auditor) crossCheck(node types.NodeID, audited *auditedNode) {
	keys := make([]uint64, 0, len(a.implied[node]))
	for seq := range a.implied[node] {
		keys = append(keys, seq)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	for _, seq := range keys {
		c := a.implied[node][seq]
		if h, ok := audited.hashes[seq]; ok && !bytes.Equal(h, c.hash) {
			a.equivocation(node, seq, c, c)
		}
	}
}

func (a *Auditor) equivocation(node types.NodeID, seq uint64, c1, c2 *impliedCommit) {
	a.fail(node, seq, "equivocation: conflicting commitments for log position %d", seq)
	// Surface the conflicting transmission as red send/receive vertices
	// (handle-extra-msg, Figure 11).
	for _, c := range []*impliedCommit{c1, c2} {
		for i := range c.msgs {
			a.Builder.HandleExtraMsg(&c.msgs[i])
		}
	}
}

// CheckAuthenticator cross-checks an externally collected authenticator
// (from the consistency check of §5.5) against an audited node's chain.
func (a *Auditor) CheckAuthenticator(auth seclog.Authenticator) {
	pub, err := a.dir.Key(auth.Node)
	if err != nil {
		return // unknown signer; nothing to verify
	}
	a.Stats.CountVerify()
	if !auth.VerifyCounted(a.Stats, pub) {
		return // not valid evidence
	}
	audited, ok := a.covered[auth.Node]
	if !ok {
		return
	}
	if h, ok := audited.hashes[auth.Seq]; ok && !bytes.Equal(h, auth.Hash) {
		a.fail(auth.Node, auth.Seq, "authenticator held by a peer is not on the presented chain (fork)")
	}
}

// Finalize flags suppressed sends, missing acks, and unacknowledged
// receives at the end of the audited prefixes (quiescence check).
func (a *Auditor) Finalize() {
	a.Builder.Finalize(a.endTimes)
}

// Graph returns the reconstructed provenance graph Gν(ε).
func (a *Auditor) Graph() *provgraph.Graph { return a.Builder.G }
