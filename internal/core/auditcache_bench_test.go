package core

import (
	"fmt"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// ruleMachine models an NDlog-style replica at realistic replay cost: every
// insert is joined against the retained derived state (a bounded scan, the
// shape of a rule-body match) and produces a derivation output. Replay cost
// is dominated by this per-event work — exactly what the audit cache
// elides.
type ruleMachine struct {
	self  types.NodeID
	state []int64
	acc   int64
}

func (m *ruleMachine) Step(ev types.Event) []types.Output {
	if ev.Kind != types.EvIns {
		return nil
	}
	v := int64(len(ev.Tuple.Rel))
	if len(ev.Tuple.Args) > 1 {
		v = ev.Tuple.Args[1].Int
	}
	// Rule evaluation: join the new tuple against the whole derived state,
	// once per rule of an eight-rule program. Most firings only bump
	// reference counts; one insert in sixteen changes the derived relation
	// and produces an output (rule work dominates output volume, the usual
	// shape of declarative replay).
	for rule := int64(0); rule < 8; rule++ {
		for _, s := range m.state {
			if (s+v+rule)%7 == 0 { // join predicate
				m.acc += s ^ v
			}
		}
	}
	m.state = append(m.state, v)
	if len(m.state)%16 != 0 {
		return nil
	}
	return []types.Output{{
		Kind: types.OutDerive, Rule: "join",
		Tuple: types.MakeTuple("d", types.N(m.self), types.I(m.acc)),
		Body:  []types.Tuple{ev.Tuple}, First: true,
	}}
}

func (m *ruleMachine) Snapshot() []byte {
	w := wire.NewWriter(8 * (len(m.state) + 2))
	w.Int(m.acc)
	w.Uint(uint64(len(m.state)))
	for _, s := range m.state {
		w.Int(s)
	}
	return w.Bytes()
}

func (m *ruleMachine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	m.acc = r.Int()
	n := r.Count()
	m.state = m.state[:0]
	for i := 0; i < n; i++ {
		m.state = append(m.state, r.Int())
	}
	return r.Finish()
}

// benchAuditFixture builds one node with n logged inserts and returns what
// an auditor needs to replay it.
func benchAuditFixture(b *testing.B, n int) (Config, *Directory, types.MachineFactory, *RetrieveResponse, seclog.Authenticator) {
	b.Helper()
	cfg := DefaultConfig()
	key, err := cryptoutil.PooledKey(cfg.suite(), 1)
	if err != nil {
		b.Fatal(err)
	}
	dir := NewDirectory()
	dir.Register("n1", key.Public())
	factory := func(self types.NodeID) types.Machine { return &ruleMachine{self: self} }
	node, err := NewNode("n1", cfg, key, dir, NewMaintainer(), &fixedClock{}, nil, factory("n1"))
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := node.InsertBase(types.MakeTuple("t", types.N("n1"), types.I(int64(i)))); err != nil {
			b.Fatal(err)
		}
	}
	auth, err := node.LatestAuth()
	if err != nil {
		b.Fatal(err)
	}
	resp, err := node.HandleRetrieve(RetrieveRequest{Auth: auth})
	if err != nil {
		b.Fatal(err)
	}
	return cfg, dir, factory, resp, auth
}

// BenchmarkAuditCacheHit compares re-auditing an unchanged segment with a
// warm persistent cache (replica replay skipped) against a fresh replay.
// The acceptance bar is a ≥5× speedup at matching results; the parity tests
// in auditcache_test.go pin the bit-identity half.
func BenchmarkAuditCacheHit(b *testing.B) {
	for _, n := range []int{1024, 4096} {
		cfg, dir, factory, resp, auth := benchAuditFixture(b, n)

		b.Run(fmt.Sprintf("replay/n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				a := NewAuditor(cfg, dir, factory, nil)
				if p := a.Prepare("n1", resp, auth); p.err != nil {
					b.Fatal(p.err)
				}
			}
		})
		b.Run(fmt.Sprintf("cached/n=%d", n), func(b *testing.B) {
			cache, err := OpenAuditCache(b.TempDir(), cfg.suite())
			if err != nil {
				b.Fatal(err)
			}
			defer cache.Close()
			ccfg := cfg
			ccfg.AuditCache = cache
			warm := NewAuditor(ccfg, dir, factory, nil)
			if p := warm.Prepare("n1", resp, auth); p.err != nil {
				b.Fatal(p.err)
			}
			if cache.Misses() != 1 {
				b.Fatal("warmup did not populate the cache")
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a := NewAuditor(ccfg, dir, factory, nil)
				if p := a.Prepare("n1", resp, auth); p.err != nil {
					b.Fatal(p.err)
				}
			}
			b.StopTimer()
			if cache.Hits() != uint64(b.N) {
				b.Fatalf("hits=%d, want %d", cache.Hits(), b.N)
			}
		})
	}
}
