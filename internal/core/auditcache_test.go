package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/seclog"
	"repro/internal/types"
	"repro/internal/wire"
)

// countMachine is a deterministic machine with real state, so the cached
// final snapshot actually carries information: inserts accumulate into sum
// and fire a send to the peer, receives accumulate separately.
type countMachine struct {
	self, peer types.NodeID
	seq        uint64
	sum        int64
}

func (m *countMachine) Step(ev types.Event) []types.Output {
	switch ev.Kind {
	case types.EvIns:
		m.sum += int64(len(ev.Tuple.Rel))
		m.seq++
		return []types.Output{{Kind: types.OutSend, Msg: &types.Message{
			Src: m.self, Dst: m.peer, Pol: types.PolAppear, Tuple: ev.Tuple,
			SendTime: ev.Time, Seq: m.seq,
		}}}
	case types.EvRcv:
		if ev.Msg != nil {
			m.sum += 7
		}
	}
	return nil
}

func (m *countMachine) Snapshot() []byte {
	w := wire.NewWriter(16)
	w.Uint(m.seq)
	w.Int(m.sum)
	return w.Bytes()
}

func (m *countMachine) Restore(snapshot []byte) error {
	r := wire.NewReader(snapshot)
	m.seq = r.Uint()
	m.sum = r.Int()
	return r.Finish()
}

// pipe delivers packets synchronously between two nodes.
type pipe struct{ nodes map[types.NodeID]*Node }

func (p *pipe) Send(from, to types.NodeID, pkt *Packet) {
	if n := p.nodes[to]; n != nil {
		_ = n.HandlePacket(from, pkt)
	}
}

// cachePair builds two talking nodes with some history: inserts on both, a
// mid-stream checkpoint on n1, and the rcv/ack traffic the sends provoke.
func cachePair(t *testing.T, cfg Config) (map[types.NodeID]*Node, *Directory, types.MachineFactory) {
	t.Helper()
	dir := NewDirectory()
	pp := &pipe{nodes: make(map[types.NodeID]*Node)}
	other := map[types.NodeID]types.NodeID{"n1": "n2", "n2": "n1"}
	factory := func(self types.NodeID) types.Machine {
		return &countMachine{self: self, peer: other[self]}
	}
	for i, id := range []types.NodeID{"n1", "n2"} {
		key, err := cryptoutil.PooledKey(cfg.suite(), int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		dir.Register(id, key.Public())
		n, err := NewNode(id, cfg, key, dir, NewMaintainer(), &fixedClock{}, pp, factory(id))
		if err != nil {
			t.Fatal(err)
		}
		pp.nodes[id] = n
	}
	n1, n2 := pp.nodes["n1"], pp.nodes["n2"]
	for i := int64(1); i <= 6; i++ {
		if err := n1.InsertBase(ins(i)); err != nil {
			t.Fatal(err)
		}
		if i == 3 {
			n1.WriteCheckpoint()
		}
		if err := n2.InsertBase(types.MakeTuple("u", types.N("n2"), types.I(i))); err != nil {
			t.Fatal(err)
		}
		_ = n1.Tick()
		_ = n2.Tick()
	}
	return pp.nodes, dir, factory
}

func retrieveAll(t *testing.T, nodes map[types.NodeID]*Node) map[types.NodeID]*RetrieveResponse {
	t.Helper()
	resps := make(map[types.NodeID]*RetrieveResponse)
	for id, n := range nodes {
		resp, err := n.HandleRetrieve(RetrieveRequest{Auth: seclog.Authenticator{Node: id, Seq: n.Log.Len()}})
		if err != nil {
			t.Fatalf("retrieve %s: %v", id, err)
		}
		resps[id] = resp
	}
	return resps
}

func evidenceFor(t *testing.T, n *Node) seclog.Authenticator {
	t.Helper()
	auth, err := n.LatestAuth()
	if err != nil {
		t.Fatal(err)
	}
	return auth
}

// preparedImage canonicalizes a PreparedAudit for bit-identity comparison:
// the serialized op stream, the machine's final snapshot, and the end time.
func preparedImage(p *PreparedAudit) []byte {
	var snap []byte
	if p.machine != nil {
		snap = p.machine.Snapshot()
	}
	return encodeAuditBody(p.machine != nil, snap, p.endTime, p.ops)
}

// TestAuditCacheHitBitIdentical pins the hard rule: a cache hit must be
// bit-identical to a fresh replay — same op stream (events, outputs, seeds,
// implied commitments), same machine state, same bookkeeping.
func TestAuditCacheHitBitIdentical(t *testing.T) {
	cfg := DefaultConfig()
	nodes, dir, factory := cachePair(t, cfg)
	resps := retrieveAll(t, nodes)

	cache, err := OpenAuditCache(t.TempDir(), cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()

	base := NewAuditor(cfg, dir, factory, nil) // no cache: ground truth
	ccfg := cfg
	ccfg.AuditCache = cache
	cold := NewAuditor(ccfg, dir, factory, nil)
	warm := NewAuditor(ccfg, dir, factory, nil)

	sawImplied := false
	for id, n := range nodes {
		ev := evidenceFor(t, n)
		pb := base.Prepare(id, resps[id], ev)
		pc := cold.Prepare(id, resps[id], ev) // populates the cache
		pw := warm.Prepare(id, resps[id], ev) // must hit
		if pb.err != nil || pc.err != nil || pw.err != nil {
			t.Fatalf("%s: prepare errors %v/%v/%v", id, pb.err, pc.err, pw.err)
		}
		if !bytes.Equal(preparedImage(pb), preparedImage(pc)) || !bytes.Equal(preparedImage(pb), preparedImage(pw)) {
			t.Fatalf("%s: prepared audits diverge across cache states", id)
		}
		if !reflect.DeepEqual(pb.ops, pw.ops) {
			t.Fatalf("%s: cached op stream is not deeply identical", id)
		}
		if !reflect.DeepEqual(pb.audited.sent, pw.audited.sent) {
			t.Fatalf("%s: sent-envelope map diverges on cache hit", id)
		}
		for i := range pb.ops {
			if pb.ops[i].kind == opImplied {
				sawImplied = true
			}
		}
		if err := base.Commit(pb); err != nil {
			t.Fatal(err)
		}
		if err := warm.Commit(pw); err != nil {
			t.Fatal(err)
		}
	}
	if !sawImplied {
		t.Fatal("fixture produced no implied commitments; the test lost its teeth")
	}
	if cache.Hits() != uint64(len(nodes)) || cache.Misses() != uint64(len(nodes)) {
		t.Fatalf("hits=%d misses=%d, want %d/%d", cache.Hits(), cache.Misses(), len(nodes), len(nodes))
	}
	if len(base.Failures()) != 0 || len(warm.Failures()) != 0 {
		t.Fatalf("honest audit recorded failures: %v / %v", base.Failures(), warm.Failures())
	}
	if !reflect.DeepEqual(base.endTimes, warm.endTimes) {
		t.Fatal("end times diverge on cache hit")
	}
}

// TestAuditCachePersists proves entries survive Sync + reopen from disk.
func TestAuditCachePersists(t *testing.T) {
	cfg := DefaultConfig()
	nodes, dir, factory := cachePair(t, cfg)
	resps := retrieveAll(t, nodes)
	cacheDir := t.TempDir()

	cache, err := OpenAuditCache(cacheDir, cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	ccfg := cfg
	ccfg.AuditCache = cache
	a1 := NewAuditor(ccfg, dir, factory, nil)
	for id, n := range nodes {
		if p := a1.Prepare(id, resps[id], evidenceFor(t, n)); p.err != nil {
			t.Fatal(p.err)
		}
	}
	if err := cache.Close(); err != nil {
		t.Fatal(err)
	}

	cache2, err := OpenAuditCache(cacheDir, cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	defer cache2.Close()
	ccfg.AuditCache = cache2
	a2 := NewAuditor(ccfg, dir, factory, nil)
	for id, n := range nodes {
		if p := a2.Prepare(id, resps[id], evidenceFor(t, n)); p.err != nil {
			t.Fatal(p.err)
		}
	}
	if cache2.Hits() != uint64(len(nodes)) || cache2.Misses() != 0 {
		t.Fatalf("reopened cache: hits=%d misses=%d, want %d/0", cache2.Hits(), cache2.Misses(), len(nodes))
	}
}

// TestAuditCacheInvalidatedOnDivergence: growing the log changes the head
// chain hash, so the old entry's key no longer matches — the audit replays
// fresh and caches the new segment.
func TestAuditCacheInvalidatedOnDivergence(t *testing.T) {
	cfg := DefaultConfig()
	nodes, dir, factory := cachePair(t, cfg)
	resps := retrieveAll(t, nodes)

	cache, err := OpenAuditCache(t.TempDir(), cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	ccfg := cfg
	ccfg.AuditCache = cache
	a1 := NewAuditor(ccfg, dir, factory, nil)
	n1 := nodes["n1"]
	if p := a1.Prepare("n1", resps["n1"], evidenceFor(t, n1)); p.err != nil {
		t.Fatal(p.err)
	}

	// The node keeps living; the next audit sees a longer chain.
	if err := n1.InsertBase(ins(100)); err != nil {
		t.Fatal(err)
	}
	resp, err := n1.HandleRetrieve(RetrieveRequest{Auth: seclog.Authenticator{Node: "n1", Seq: n1.Log.Len()}})
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewAuditor(ccfg, dir, factory, nil)
	p := a2.Prepare("n1", resp, evidenceFor(t, n1))
	if p.err != nil {
		t.Fatal(p.err)
	}
	if cache.Hits() != 0 {
		t.Fatalf("stale entry served as a hit (hits=%d)", cache.Hits())
	}
	if err := a2.Commit(p); err != nil {
		t.Fatal(err)
	}
	if len(a2.Failures()) != 0 {
		t.Fatalf("honest divergent audit recorded failures: %v", a2.Failures())
	}
}

// TestAuditCachePoisonedNoFalseAccusation is the hostile-cache matrix: an
// attacker who can rewrite the cache files must never be able to make the
// auditor accuse an honest node. Structural poison is detected and falls
// back to a fresh replay with a bit-identical result; semantically valid
// poison of the machine outputs is the worst case and still yields zero
// failures, because every accusation-capable op is re-derived from the
// verified segment.
func TestAuditCachePoisonedNoFalseAccusation(t *testing.T) {
	cfg := DefaultConfig()
	nodes, dir, factory := cachePair(t, cfg)
	resps := retrieveAll(t, nodes)

	cache, err := OpenAuditCache(t.TempDir(), cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	ccfg := cfg
	ccfg.AuditCache = cache

	seed := NewAuditor(ccfg, dir, factory, nil)
	baseline := make(map[types.NodeID][]byte)
	keys := make(map[types.NodeID][]byte)
	for id, n := range nodes {
		p := seed.Prepare(id, resps[id], evidenceFor(t, n))
		if p.err != nil {
			t.Fatal(p.err)
		}
		baseline[id] = preparedImage(p)
		seg := resps[id].Segment
		hashes := p.audited.hashes
		keys[id] = cache.key(id, seg.From, seg.To(), hashes[seg.To()])
	}

	poisons := []struct {
		name   string
		mutate func(ca *cachedAudit)
	}{
		{"truncated op stream", func(ca *cachedAudit) { ca.ops = ca.ops[:len(ca.ops)-1] }},
		{"extra op", func(ca *cachedAudit) { ca.ops = append(ca.ops, replayOp{kind: opEvent}) }},
		{"wrong end time", func(ca *cachedAudit) { ca.endTime++ }},
		{"implied commitment retargeted", func(ca *cachedAudit) {
			for i := range ca.ops {
				if ca.ops[i].kind == opImplied {
					ca.ops[i].seq += 5 // vouch for a position the peer never signed
					return
				}
			}
		}},
		{"implied hash forged", func(ca *cachedAudit) {
			for i := range ca.ops {
				if ca.ops[i].kind == opImplied {
					ca.ops[i].commit.hash[0] ^= 0xff
					return
				}
			}
		}},
		{"machine outputs forged", func(ca *cachedAudit) {
			for i := range ca.ops {
				if ca.ops[i].kind == opEvent && len(ca.ops[i].outs) > 0 {
					ca.ops[i].outs[0].Tuple = types.MakeTuple("forged", types.N("n2"))
					return
				}
			}
		}},
		{"snapshot forged", func(ca *cachedAudit) { ca.snapshot = []byte{0xde, 0xad} }},
	}
	for _, tc := range poisons {
		t.Run(tc.name, func(t *testing.T) {
			for id, n := range nodes {
				body, ok := cache.get(keys[id])
				if !ok {
					t.Fatalf("no cached body for %s", id)
				}
				ca, err := decodeAuditBody(body)
				if err != nil {
					t.Fatal(err)
				}
				tc.mutate(ca)
				cache.put(keys[id], encodeAuditBody(ca.hadMachine, ca.snapshot, ca.endTime, ca.ops))

				a := NewAuditor(ccfg, dir, factory, nil)
				p := a.Prepare(id, resps[id], evidenceFor(t, n))
				if p.err != nil {
					t.Fatalf("%s: prepare error on poisoned cache: %v", id, p.err)
				}
				if err := a.Commit(p); err != nil {
					t.Fatal(err)
				}
				for _, f := range a.Failures() {
					t.Errorf("%s: poisoned cache produced an accusation: %v", id, f)
				}
				if tc.name != "machine outputs forged" && tc.name != "snapshot forged" {
					// Structural poison must be rejected outright and the
					// fresh fallback must reproduce the baseline exactly.
					if !bytes.Equal(preparedImage(p), baseline[id]) {
						t.Errorf("%s: fallback result diverges from baseline", id)
					}
				}
				// Heal the entry for the next subtest.
				a2 := NewAuditor(ccfg, dir, factory, nil)
				if p2 := a2.Prepare(id, resps[id], evidenceFor(t, n)); p2.err != nil {
					t.Fatal(p2.err)
				}
			}
		})
	}

	// Raw corruption of the stored payload: the integrity prefix rejects it.
	for id, n := range nodes {
		body, _ := cache.get(keys[id])
		garbled := append([]byte(nil), body...)
		garbled[len(garbled)/2] ^= 0x01
		_ = cache.store.Put(keys[id], garbled) // no integrity prefix at all
		a := NewAuditor(ccfg, dir, factory, nil)
		p := a.Prepare(id, resps[id], evidenceFor(t, n))
		if p.err != nil {
			t.Fatalf("%s: prepare error on corrupt payload: %v", id, p.err)
		}
		if !bytes.Equal(preparedImage(p), baseline[id]) {
			t.Errorf("%s: corrupt payload fallback diverges from baseline", id)
		}
		if len(a.Failures()) != 0 {
			t.Errorf("%s: corrupt payload produced accusations: %v", id, a.Failures())
		}
	}
}

// TestAuditCacheNeverCachesFailures: a replay that records evidence must
// not be cached, so the evidence is re-derived (and re-reported) on every
// audit rather than replayed from disk.
func TestAuditCacheNeverCachesFailures(t *testing.T) {
	cfg := DefaultConfig()
	nodes, dir, factory := cachePair(t, cfg)
	resps := retrieveAll(t, nodes)

	cache, err := OpenAuditCache(t.TempDir(), cfg.suite())
	if err != nil {
		t.Fatal(err)
	}
	defer cache.Close()
	ccfg := cfg
	ccfg.AuditCache = cache

	// Tamper with n1's served segment: flip a byte in one entry so the
	// chain no longer matches the authenticator.
	resp := resps["n1"]
	tampered := *resp
	seg := *resp.Segment
	seg.Entries = append([]*seclog.Entry(nil), seg.Entries...)
	e := *seg.Entries[1]
	e.T++
	seg.Entries[1] = &e
	tampered.Segment = &seg

	a := NewAuditor(ccfg, dir, factory, nil)
	p := a.Prepare("n1", &tampered, evidenceFor(t, nodes["n1"]))
	if p.err == nil {
		t.Fatal("tampered segment verified")
	}
	if err := a.Commit(p); err == nil {
		t.Fatal("tampered segment committed without error")
	}
	if len(a.Failures()) == 0 {
		t.Fatal("tampered segment recorded no evidence")
	}
	if cache.Hits()+cache.Misses() != 0 {
		// The segment never verified, so the cache must not even have
		// been consulted (the key is derived from verified hashes).
		t.Fatalf("cache consulted for unverifiable segment (h=%d m=%d)", cache.Hits(), cache.Misses())
	}
}
