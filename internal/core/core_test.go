package core

import (
	"testing"

	"repro/internal/cryptoutil"
	"repro/internal/types"
	"repro/internal/wire"
)

func TestDirectory(t *testing.T) {
	d := NewDirectory()
	key, err := cryptoutil.Ed25519SHA256.GenerateKey(1)
	if err != nil {
		t.Fatal(err)
	}
	d.Register("n1", key.Public())
	if _, err := d.Key("n1"); err != nil {
		t.Errorf("registered key not found: %v", err)
	}
	if _, err := d.Key("nope"); err == nil {
		t.Error("unknown node resolved")
	}
	if len(d.Nodes()) != 1 {
		t.Errorf("Nodes = %v", d.Nodes())
	}
}

func TestMaintainer(t *testing.T) {
	m := NewMaintainer()
	id := types.MessageID{Src: "a", Dst: "b", Seq: 1}
	if m.WasNotified("a", id) {
		t.Error("fresh maintainer has notifications")
	}
	m.NotifyMissingAck("a", id)
	if !m.WasNotified("a", id) {
		t.Error("notification lost")
	}
	if m.WasNotified("b", id) {
		t.Error("notification leaked to another reporter")
	}
	if m.Count() != 1 {
		t.Errorf("Count = %d", m.Count())
	}
	var nilM *Maintainer
	if nilM.WasNotified("a", id) {
		t.Error("nil maintainer reported a notification")
	}
}

func TestEnvelopeRoundTrip(t *testing.T) {
	env := Envelope{
		Msgs: []types.Message{{
			Src: "a", Dst: "b", Pol: types.PolAppear,
			Tuple: types.MakeTuple("x", types.N("b"), types.I(1)), SendTime: 5, Seq: 1,
		}},
		PrevHash: []byte{1, 2, 3},
		T:        5,
		Sig:      []byte{9, 9},
		Seq:      7,
	}
	var got Envelope
	if err := wire.Decode(wire.Encode(env), &got); err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.T != 5 || len(got.Msgs) != 1 || !got.Msgs[0].Tuple.Equal(env.Msgs[0].Tuple) {
		t.Errorf("round trip = %+v", got)
	}
	if env.PayloadSize() <= 0 || env.PayloadSize() >= wire.Size(env) {
		t.Errorf("payload size %d vs full %d", env.PayloadSize(), wire.Size(env))
	}
}

func TestAckRoundTrip(t *testing.T) {
	ack := Ack{
		IDs:      []types.MessageID{{Src: "a", Dst: "b", Seq: 1}, {Src: "a", Dst: "b", Seq: 2}},
		PrevHash: []byte{4},
		T:        6,
		Sig:      []byte{5},
		Seq:      9,
	}
	var got Ack
	if err := wire.Decode(wire.Encode(ack), &got); err != nil {
		t.Fatal(err)
	}
	if len(got.IDs) != 2 || got.IDs[1].Seq != 2 || got.Seq != 9 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}
	if cfg.suite() == nil {
		t.Error("nil suite not defaulted")
	}
	d := DefaultConfig()
	if d.Tprop <= 0 || d.DeltaClock <= 0 || d.CheckpointEvery <= 0 {
		t.Errorf("DefaultConfig = %+v", d)
	}
}
