package multiproc

import (
	"fmt"
	"time"

	"repro/internal/adversary"
	"repro/internal/supervisor"
	"repro/internal/types"
)

// BenchRow is one multi-process benchmark result: an app run under a crash
// plan with tamper-log armed, measuring supervised-recovery latency and
// detection quality across OS-process crashes.
type BenchRow struct {
	App   string
	Plan  string
	Seed  int64

	// Converged reports whether the workload converged after the crashes.
	Converged    bool
	ConvergeTime time.Duration
	// RestartToHealthy is the worst crashed node's respawn→first-healthy-
	// probe latency; TimeToHeal spans crash-plan launch to every node
	// healthy again.
	RestartToHealthy time.Duration
	TimeToHeal       time.Duration
	// DetectLatency is the audit wall time until the verdict settled.
	DetectLatency time.Duration
	Detected      bool
	FalseAccused  int
	Unresponsive  int
	Restarts      int
	TornBytes     int64
}

func (r BenchRow) String() string {
	return fmt.Sprintf("%-8s %-10s seed=%d conv=%-5v heal=%-8s restart=%-8s detect=%-8s hit=%-5v false=%d unresp=%d restarts=%d torn=%dB",
		r.App, r.Plan, r.Seed, r.Converged,
		r.TimeToHeal.Round(time.Millisecond), r.RestartToHealthy.Round(time.Millisecond),
		r.DetectLatency.Round(time.Millisecond),
		r.Detected, r.FalseAccused, r.Unresponsive, r.Restarts, r.TornBytes)
}

// benchPlans returns the per-app crash plans the bench runs: one kill and
// one torn-tail crash per deployment, on distinct honest nodes.
func benchPlans(app string) []supervisor.CrashRule {
	switch app {
	case "mincost":
		return []supervisor.CrashRule{
			{Node: "c", Mode: supervisor.ModeKill, AtAppend: 3, Jitter: 1},
			{Node: "d", Mode: supervisor.ModeTorn, AtAppend: 4, Jitter: 1},
		}
	case "quagga":
		return []supervisor.CrashRule{
			{Node: "as10", Mode: supervisor.ModeKill, AtAppend: 4, Jitter: 1},
			{Node: "as51", Mode: supervisor.ModeTorn, AtAppend: 3, Jitter: 1},
		}
	}
	return nil
}

// Bench runs the multi-process crash benchmark: for each app, a supervised
// deployment with tamper-log on the compromised node and a kill+torn crash
// plan, measuring recovery and detection. dir roots the deployments (one
// subdirectory per app). The returned rows carry the §4.2 scorecard;
// callers decide which deviations are fatal.
func Bench(dir string, seed int64) ([]BenchRow, error) {
	var rows []BenchRow
	for _, name := range supervisor.AppNames() {
		row, err := benchOne(fmt.Sprintf("%s/%s", dir, name), name, seed)
		if err != nil {
			return rows, fmt.Errorf("multiproc bench %s: %w", name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func benchOne(dir, appName string, seed int64) (BenchRow, error) {
	app, err := supervisor.AppByName(appName)
	if err != nil {
		return BenchRow{}, err
	}
	behaviors := make(map[types.NodeID][]string)
	for _, id := range app.Compromised {
		behaviors[id] = []string{"tamper-log"}
	}
	row := BenchRow{App: appName, Plan: "kill+torn", Seed: seed}
	start := time.Now()
	h, err := New(Options{
		Seed:        seed,
		Dir:         dir,
		App:         appName,
		Behaviors:   behaviors,
		Crash:       &supervisor.CrashPlan{Seed: seed, Rules: benchPlans(appName)},
		TickMs:      5,
		SyncEvery:   5,
		BackoffBase: 20 * time.Millisecond,
	})
	if err != nil {
		return row, err
	}
	defer h.Close()

	pre, err := h.WaitCrashed(45 * time.Second)
	if err != nil {
		return row, err
	}
	if err := h.Sup.WaitHealthy(30 * time.Second); err != nil {
		return row, err
	}
	row.TimeToHeal = time.Since(start)
	if err := h.Sup.WaitConverged(30 * time.Second); err == nil {
		row.Converged = true
		row.ConvergeTime = time.Since(start)
	}
	h.Settle()

	for id := range pre {
		hr, err := h.VerifyRecovered(id, pre[id])
		if err != nil {
			return row, err
		}
		row.TornBytes += hr.TornBytes
		row.Restarts += h.Sup.Restarts(id)
		for _, d := range h.Sup.StartToHealthy(id) {
			if d > row.RestartToHealthy {
				row.RestartToHealthy = d
			}
		}
	}

	if err := h.SyncNotes(); err != nil {
		return row, err
	}
	q := h.NewQuerier()
	auditStart := time.Now()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(30*time.Second), 500*time.Millisecond)
	row.DetectLatency = time.Since(auditStart)
	row.Detected = v.Detected(app.Compromised)
	row.FalseAccused = len(v.FalselyAccused(app.Compromised))
	row.Unresponsive = len(v.Unresponsive)
	return row, nil
}
