// Package multiproc runs SNP deployments across real OS processes — one
// snp-node daemon per node under a supervisor — and audits them from the
// parent over the wire. It is the layer above livetcp in the realism
// ladder: same framed-TCP protocol, but the failure unit is a process
// (SIGKILL, torn log tails, supervised restart through crash recovery), and
// the conformance suite here re-proves the §4.2 detection guarantee across
// those crashes.
package multiproc

import (
	"bytes"
	"fmt"
	"path/filepath"
	"time"

	"repro/internal/core"
	"repro/internal/cryptoutil"
	"repro/internal/supervisor"
	"repro/internal/transport"
	"repro/internal/types"
)

// Options configures a multi-process deployment.
type Options struct {
	// Dir roots everything the deployment writes (required; one deployment
	// per directory).
	Seed int64
	Dir  string
	// App names the workload (supervisor.AppByName).
	App string
	// Behaviors maps nodes to adversary profile names armed in-process.
	Behaviors map[types.NodeID][]string
	// Crash schedules seeded process deaths (nil: none).
	Crash *supervisor.CrashPlan
	// Supervisor tuning passed through (zero: supervisor defaults).
	TickMs, SyncEvery int
	BackoffBase       time.Duration
	// AuditCallTimeout / AuditRetryDeadline bound the parent's audit and
	// probe RPCs (defaults 500ms / 2s).
	AuditCallTimeout   time.Duration
	AuditRetryDeadline time.Duration
}

// Harness is one running multi-process deployment, seen from the parent:
// the supervisor owning the children, and the audit-side state (directory,
// maintainer, queriers) the parent needs to score evidence.
type Harness struct {
	Opts Options
	Sup  *supervisor.Supervisor
	App  supervisor.NodeApp
	Cfg  core.Config
	Dir  *core.Directory
	// Maint is the parent-side maintainer; SyncNotes merges every child
	// process's missing-ack reports into it before an audit.
	Maint *core.Maintainer

	fetch    *transport.RemoteFetcher
	fetchers []*transport.RemoteFetcher
}

// New launches the deployment: a supervisor with one daemon process per
// node, plus the parent-side audit state (the same key derivation the
// children use, so both sides agree on the directory).
func New(opts Options) (*Harness, error) {
	if opts.Dir == "" {
		return nil, fmt.Errorf("multiproc: Options.Dir is required")
	}
	if opts.AuditCallTimeout <= 0 {
		opts.AuditCallTimeout = 500 * time.Millisecond
	}
	if opts.AuditRetryDeadline <= 0 {
		opts.AuditRetryDeadline = 2 * time.Second
	}
	sup, err := supervisor.New(supervisor.Options{
		Dir:         opts.Dir,
		Seed:        opts.Seed,
		App:         opts.App,
		Behaviors:   opts.Behaviors,
		Crash:       opts.Crash,
		TickMs:      opts.TickMs,
		SyncEvery:   opts.SyncEvery,
		BackoffBase: opts.BackoffBase,
	})
	if err != nil {
		return nil, err
	}
	app := sup.App()

	cfg := core.DefaultConfig()
	cfg.Tprop = types.Time(supervisor.NodeConfig{}.Tprop())
	cfg.DeltaClock = cfg.Tprop / 2
	cfg.CheckpointEvery = 0
	dir := core.NewDirectory()
	for i, id := range app.Nodes {
		key, err := cryptoutil.PooledKey(cfg.Suite, opts.Seed*1000+int64(100+i))
		if err != nil {
			return nil, err
		}
		dir.Register(id, key.Public())
	}

	h := &Harness{
		Opts:  opts,
		Sup:   sup,
		App:   app,
		Cfg:   cfg,
		Dir:   dir,
		Maint: core.NewMaintainer(),
	}
	if err := sup.Start(); err != nil {
		sup.Stop(2 * time.Second)
		return nil, err
	}
	h.fetch = sup.Cluster().NewFetcher("harness")
	h.fetch.CallTimeout = opts.AuditCallTimeout
	h.fetch.RetryDeadline = opts.AuditRetryDeadline
	return h, nil
}

// DataDir is where the children keep their segment stores (shared
// filesystem — the parent reads sidecars from it directly).
func (h *Harness) DataDir() string { return filepath.Join(h.Opts.Dir, "data") }

// Health probes one child over the wire.
func (h *Harness) Health(id types.NodeID, probeSeq uint64) (transport.Health, error) {
	return h.fetch.Health(id, probeSeq)
}

// SyncNotes pulls every child process's missing-ack reports (§5.4) into
// the parent-side maintainer. In a one-process deployment all nodes share
// a maintainer; across processes each daemon holds only its own reports,
// so an audit that skipped this merge would miss leads.
func (h *Harness) SyncNotes() error {
	var firstErr error
	for _, id := range h.App.Nodes {
		notes, err := h.fetch.Notes(id)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("multiproc: notes from %s: %w", id, err)
			}
			continue
		}
		for _, n := range notes {
			h.Maint.NotifyMissingAck(n.Reporter, n.ID)
		}
	}
	return firstErr
}

// NewQuerier builds an audit session over the wire, dialing the child
// processes like any external auditor.
func (h *Harness) NewQuerier() *core.Querier {
	f := h.Sup.Cluster().NewFetcher("auditor")
	f.CallTimeout = h.Opts.AuditCallTimeout
	f.RetryDeadline = h.Opts.AuditRetryDeadline
	h.fetchers = append(h.fetchers, f)
	auditor := core.NewAuditor(h.Cfg, h.Dir, h.App.Factory, h.Maint)
	q := core.NewQuerier(auditor, f)
	if h.App.ConfigureQuerier != nil {
		h.App.ConfigureQuerier(q)
	}
	return q
}

// WaitCrashed waits until every node the crash plan names has died and been
// respawned at least once, then returns the pre-crash synced state the
// supervisor captured for each (it reads the sidecar in the window between
// a child dying and its replacement starting, so the capture is race-free).
func (h *Harness) WaitCrashed(timeout time.Duration) (map[types.NodeID]supervisor.SyncedState, error) {
	if h.Opts.Crash == nil {
		return nil, fmt.Errorf("multiproc: no crash plan to wait for")
	}
	var targets []types.NodeID
	for _, id := range h.App.Nodes {
		if _, ok := h.Opts.Crash.RuleFor(id); ok {
			targets = append(targets, id)
		}
	}
	deadline := time.Now().Add(timeout)
	for {
		var waiting []types.NodeID
		for _, id := range targets {
			if h.Sup.Restarts(id) == 0 {
				waiting = append(waiting, id)
			}
		}
		if len(waiting) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("multiproc: crash plan did not fire on %v within %v", waiting, timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
	pre := make(map[types.NodeID]supervisor.SyncedState)
	for _, id := range targets {
		states := h.Sup.PreCrashStates(id)
		if len(states) == 0 {
			return nil, fmt.Errorf("multiproc: %s crashed but left no synced sidecar to verify against", id)
		}
		pre[id] = states[len(states)-1]
	}
	return pre, nil
}

// VerifyRecovered checks that a recovered child's chain still passes
// through a captured pre-crash synced state: the health probe at that
// sequence must return the captured hash, and the live head must be at or
// past it. It returns the health report so callers can inspect TornBytes.
func (h *Harness) VerifyRecovered(id types.NodeID, st supervisor.SyncedState) (transport.Health, error) {
	hr, err := h.Health(id, st.Seq)
	if err != nil {
		return hr, fmt.Errorf("multiproc: probing recovered %s: %w", id, err)
	}
	if hr.HeadSeq < st.Seq {
		return hr, fmt.Errorf("multiproc: %s recovered to head %d, behind its synced state %d",
			id, hr.HeadSeq, st.Seq)
	}
	if !bytes.Equal(hr.ProbeHash, st.Hash) {
		return hr, fmt.Errorf("multiproc: %s chain hash at %d diverged from its pre-crash synced state",
			id, st.Seq)
	}
	return hr, nil
}

// Settle sleeps long enough for every in-flight exchange among the
// children to resolve (the livetcp settling window: the daemons tick
// themselves, the parent only has to wait).
func (h *Harness) Settle() {
	tprop := supervisor.NodeConfig{}.Tprop()
	time.Sleep(5*tprop/2 + 200*time.Millisecond)
}

// Close tears the deployment down: audit fetchers, then the supervised
// children (graceful, with a kill fallback).
func (h *Harness) Close() {
	for _, f := range h.fetchers {
		f.Close()
	}
	if h.fetch != nil {
		h.fetch.Close()
	}
	h.Sup.Stop(5 * time.Second)
}
