package multiproc_test

import (
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/adversary"
	"repro/internal/multiproc"
	"repro/internal/supervisor"
	"repro/internal/types"
)

// TestMain makes this test binary double as the node-daemon image: when the
// supervisor spawns it with SNP_NODE_CONFIG set, it becomes a daemon and
// never reaches the test runner.
func TestMain(m *testing.M) {
	supervisor.MaybeChild()
	os.Exit(m.Run())
}

// workDir prefers tmpfs (daemons fsync their log segments on sync, and
// block-device fsync latency in CI containers can be pathological) and keeps
// the deployment directory when the test fails, so the per-daemon logs
// survive for CI to upload as artifacts.
func workDir(t *testing.T) string {
	t.Helper()
	root := os.TempDir()
	if fi, err := os.Stat("/dev/shm"); err == nil && fi.IsDir() {
		root = "/dev/shm"
	}
	dir, err := os.MkdirTemp(root, "snp-multiproc-*")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if t.Failed() {
			t.Logf("deployment directory kept for post-mortem: %s", dir)
			return
		}
		os.RemoveAll(dir)
	})
	return dir
}

// crashCase is one app with a seeded crash plan that kills distinct honest
// nodes: one clean SIGKILL mid-run, one SIGKILL in the middle of a split
// segment write (a genuinely torn tail for recovery to truncate), and — on
// the app with an honest node to spare — one SIGKILL on the compactor
// goroutine mid-fold (replacement table durable, manifest swap uncommitted;
// recovery must come back on the old table set and collect the orphan).
type crashCase struct {
	app     string
	rules   []supervisor.CrashRule
	kill    types.NodeID // the ModeKill target
	torn    types.NodeID // the ModeTorn target
	compact types.NodeID // the ModeCompact target (empty: none in this case)
}

func crashCases() []crashCase {
	return []crashCase{
		// Triggers sit well below the converged heads (8 for mincost, 9/5
		// for quagga's as10/as51), so every rule fires mid-exchange even
		// when the other crashes in the plan disrupt the workload. The
		// compact rule needs a couple of appends past its trigger to seal
		// the tables its fold dies in, so its trigger sits lowest. mincost
		// deploys only three processes (b compromised), so only quagga has
		// an honest node free for the compact crash.
		{
			app: "mincost", kill: "c", torn: "d",
			rules: []supervisor.CrashRule{
				{Node: "c", Mode: supervisor.ModeKill, AtAppend: 3, Jitter: 1},
				{Node: "d", Mode: supervisor.ModeTorn, AtAppend: 4, Jitter: 1},
			},
		},
		{
			app: "quagga", kill: "as10", torn: "as51", compact: "as20",
			rules: []supervisor.CrashRule{
				{Node: "as10", Mode: supervisor.ModeKill, AtAppend: 4, Jitter: 1},
				{Node: "as51", Mode: supervisor.ModeTorn, AtAppend: 3, Jitter: 1},
				{Node: "as20", Mode: supervisor.ModeCompact, AtAppend: 2, Jitter: 1},
			},
		},
	}
}

// TestCrashConformance re-proves the §4.2 detection guarantee when the
// failure unit is an OS process: tamper-log armed on each app's compromised
// node, a seeded crash plan SIGKILLing two honest nodes (one mid-append,
// leaving a torn tail), supervised recovery bringing them back, and a full
// over-the-wire audit afterwards. The invariant, process-crash form:
//
//   - provable evidence still never names an honest node — crashing is not
//     tampering, and recovery must not make it look like tampering;
//   - the tamperer is still provably exposed;
//   - recovered nodes' chains still pass through their last pre-crash
//     synced state, and healed nodes are not stuck in the lead tiers.
func TestCrashConformance(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, cc := range crashCases() {
		for _, seed := range seeds {
			cc, seed := cc, seed
			t.Run(fmt.Sprintf("%s/seed=%d", cc.app, seed), func(t *testing.T) {
				runCrashCase(t, cc, seed)
			})
		}
	}
}

func runCrashCase(t *testing.T, cc crashCase, seed int64) {
	app, err := supervisor.AppByName(cc.app)
	if err != nil {
		t.Fatal(err)
	}
	behaviors := make(map[types.NodeID][]string)
	for _, id := range app.Compromised {
		behaviors[id] = []string{"tamper-log"}
	}
	h, err := multiproc.New(multiproc.Options{
		Seed:        seed,
		Dir:         workDir(t),
		App:         cc.app,
		Behaviors:   behaviors,
		Crash:       &supervisor.CrashPlan{Seed: seed, Rules: cc.rules},
		TickMs:      5,
		SyncEvery:   5,
		BackoffBase: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Both planned crashes must actually fire, and the supervisor must have
	// captured each victim's last synced state before respawning it.
	pre, err := h.WaitCrashed(45 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(pre) != len(cc.rules) {
		t.Fatalf("crash plan hit %d nodes, want %d: %v", len(pre), len(cc.rules), pre)
	}
	if err := h.Sup.WaitHealthy(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	// Convergence is best-effort with a tamperer in the mix; it must never
	// corrupt the verdict below.
	if err := h.Sup.WaitConverged(30 * time.Second); err != nil {
		t.Logf("note: %v (acceptable with tamper-log armed)", err)
	}
	h.Settle()

	// Recovery preserved every pre-crash synced state: the live chain still
	// passes through the captured (seq, hash), at or below the new head.
	for id, st := range pre {
		hr, err := h.VerifyRecovered(id, st)
		if err != nil {
			t.Errorf("recovery broke %s's chain: %v", id, err)
			continue
		}
		switch id {
		case cc.torn:
			if hr.TornBytes == 0 {
				t.Errorf("%s died mid-flush but recovery truncated no torn tail", id)
			}
		case cc.kill:
			if hr.TornBytes != 0 {
				t.Errorf("%s died record-aligned but recovery saw %d torn bytes", id, hr.TornBytes)
			}
		case cc.compact:
			// The compact rule only ever dies inside the MidCompact hook, so
			// reaching here means the process was killed with a durable
			// replacement table and an uncommitted manifest; VerifyRecovered
			// above already proved the fold never moved the synced head
			// off-chain. The tail was fully synced when the fold started, so
			// recovery must not have needed to truncate anything.
			if hr.TornBytes != 0 {
				t.Errorf("%s died mid-compaction but recovery saw %d torn bytes", id, hr.TornBytes)
			}
		}
	}

	// Audit the whole deployment over the wire, with every daemon's
	// missing-ack reports merged in first.
	if err := h.SyncNotes(); err != nil {
		t.Logf("note: %v", err)
	}
	q := h.NewQuerier()
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(30*time.Second), 500*time.Millisecond)
	t.Logf("verdict: %v; unreachable: %v", v, q.Unreachable())

	// Accuracy, unconditionally: provable evidence only ever names the
	// compromised set, process crashes or not.
	if accused := v.FalselyAccused(app.Compromised); len(accused) != 0 {
		t.Errorf("provable evidence implicates honest nodes %v\nfailures: %v\nred: %v",
			accused, v.Failures, v.RedHosts)
	}
	// Completeness: tamper-log is Provable — crashes elsewhere in the
	// deployment must not mask the tamperer.
	bad := make(map[types.NodeID]bool)
	for _, id := range app.Compromised {
		bad[id] = true
	}
	exposed := false
	for _, id := range v.StrongNodes() {
		if bad[id] {
			exposed = true
		}
	}
	if !exposed {
		t.Errorf("tamper-log on %v yielded no provable evidence: %v", app.Compromised, v)
	}
	// Healed crash victims answer audits again: they are neither provable
	// evidence (checked above) nor stuck unresponsive leads.
	for id := range pre {
		if why, lead := v.Unresponsive[id]; lead {
			t.Errorf("recovered node %s still unresponsive after heal: %v", id, why)
		}
	}
	if failed := h.Sup.Failed(); len(failed) != 0 {
		t.Errorf("supervisor gave up on nodes: %v", failed)
	}
}

// TestUnreachableHealsAcrossRestart pins the querier-side degradation story
// when a whole process dies: audits of the dead node fail and park it in
// Unreachable (a lead, not a suspect), and after supervised recovery
// ForgetUnreachable plus a retry audits it cleanly — no provable evidence
// anywhere, because nothing dishonest ever happened.
func TestUnreachableHealsAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process heal test in -short mode")
	}
	h, err := multiproc.New(multiproc.Options{
		Seed:      5,
		Dir:       workDir(t),
		App:       "mincost",
		TickMs:    5,
		SyncEvery: 5,
		// A slow respawn leaves a wide window where d is genuinely down;
		// short audit timeouts make EnsureAudited fail inside it.
		BackoffBase:        800 * time.Millisecond,
		AuditCallTimeout:   150 * time.Millisecond,
		AuditRetryDeadline: 250 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.Sup.WaitHealthy(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := h.Sup.WaitConverged(30 * time.Second); err != nil {
		t.Fatal(err)
	}
	h.Settle()

	if err := h.Sup.Kill("d"); err != nil {
		t.Fatal(err)
	}
	for deadline := time.Now().Add(10 * time.Second); h.Sup.Running("d"); {
		if time.Now().After(deadline) {
			t.Fatal("d still running after Kill")
		}
		time.Sleep(5 * time.Millisecond)
	}

	q := h.NewQuerier()
	if err := q.EnsureAudited("d", 0); err == nil {
		t.Fatal("audit of a dead process succeeded")
	}
	if _, ok := q.Unreachable()["d"]; !ok {
		t.Fatalf("d missing from Unreachable: %v", q.Unreachable())
	}
	if err := q.EnsureAudited("c", 0); err != nil {
		t.Fatalf("audit of a live node failed: %v", err)
	}

	// Let the supervisor bring d back through crash recovery.
	deadline := time.Now().Add(30 * time.Second)
	for h.Sup.Restarts("d") == 0 || !h.Sup.Running("d") {
		if time.Now().After(deadline) {
			t.Fatalf("d not respawned: restarts=%d running=%v", h.Sup.Restarts("d"), h.Sup.Running("d"))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := h.Sup.WaitHealthy(30 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Heal the querier: forget the mark, dial fresh, audit again.
	q.ForgetUnreachable("d")
	if _, ok := q.Unreachable()["d"]; ok {
		t.Fatal("ForgetUnreachable left d marked")
	}
	f2 := h.Sup.Cluster().NewFetcher("auditor2")
	f2.CallTimeout = time.Second
	f2.RetryDeadline = 5 * time.Second
	defer f2.Close()
	q.Fetch = f2
	if err := q.EnsureAudited("d", 0); err != nil {
		t.Fatalf("audit after recovery failed: %v", err)
	}

	// A full audit of the healed deployment: an honest crash plus recovery
	// must leave no provable evidence against anyone, and d must not be
	// stuck in the unresponsive tier.
	if err := h.SyncNotes(); err != nil {
		t.Logf("note: %v", err)
	}
	v := adversary.AuditUntil(q, h.Maint, time.Now().Add(20*time.Second), 500*time.Millisecond)
	if len(v.Failures) != 0 || len(v.RedHosts) != 0 {
		t.Errorf("honest crash+recovery produced provable evidence: %v\nfailures: %v", v, v.Failures)
	}
	if why, ok := v.Unresponsive["d"]; ok {
		t.Errorf("recovered d still unresponsive: %v", why)
	}
}
