package types

import (
	"testing"
	"testing/quick"

	"repro/internal/wire"
)

func TestValueRoundTrip(t *testing.T) {
	cases := []Value{S("hello"), S(""), I(0), I(-42), I(1 << 50), N("router-1")}
	for _, v := range cases {
		buf := wire.Encode(v)
		var got Value
		if err := wire.Decode(buf, &got); err != nil {
			t.Fatalf("decode %v: %v", v, err)
		}
		if got != v {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func TestValueKindValidation(t *testing.T) {
	var v Value
	if err := wire.Decode([]byte{99, 0}, &v); err == nil {
		t.Error("invalid kind accepted")
	}
}

func TestValueOrder(t *testing.T) {
	// Kinds order before payloads; within a kind, payloads order naturally.
	ordered := []Value{S("a"), S("b"), I(-1), I(5), N("a"), N("z")}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := ordered[i].Less(ordered[j])
			want := i < j
			if got != want {
				t.Errorf("Less(%v, %v) = %v, want %v", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestTupleKey(t *testing.T) {
	a := MakeTuple("link", N("r"), N("a"), I(5))
	b := MakeTuple("link", N("r"), N("a"), I(5))
	c := MakeTuple("link", N("r"), N("a"), I(6))
	if a.Key() != b.Key() {
		t.Error("equal tuples have different keys")
	}
	if a.Key() == c.Key() {
		t.Error("distinct tuples share a key")
	}
	if want := "link(@r,@a,5)"; a.Key() != want {
		t.Errorf("Key = %q, want %q", a.Key(), want)
	}
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal is inconsistent with Key")
	}
}

func TestTupleLoc(t *testing.T) {
	tup := MakeTuple("route", N("r1"), S("10.0.0.0/8"))
	if tup.Loc() != "r1" {
		t.Errorf("Loc = %q", tup.Loc())
	}
	if !tup.HasLoc() {
		t.Error("HasLoc = false")
	}
	noLoc := MakeTuple("count", I(3))
	if noLoc.HasLoc() {
		t.Error("integer-led tuple reported a location")
	}
}

func TestTupleWireRoundTrip(t *testing.T) {
	tup := MakeTuple("cost", N("c"), N("d"), N("b"), I(5))
	buf := wire.Encode(tup)
	var got Tuple
	if err := wire.Decode(buf, &got); err != nil {
		t.Fatal(err)
	}
	if !got.Equal(tup) {
		t.Errorf("round trip %v -> %v", tup, got)
	}
	if got.Key() != tup.Key() {
		t.Error("decoded tuple key differs")
	}
}

func TestMessageRoundTrip(t *testing.T) {
	m := Message{
		Src:      "b",
		Dst:      "c",
		Pol:      PolAppear,
		Tuple:    MakeTuple("cost", N("c"), N("d"), N("b"), I(5)),
		SendTime: 12345,
		Seq:      7,
	}
	buf := wire.Encode(m)
	var got Message
	if err := wire.Decode(buf, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID() != m.ID() || got.Pol != m.Pol || !got.Tuple.Equal(m.Tuple) || got.SendTime != m.SendTime {
		t.Errorf("round trip %v -> %v", m, got)
	}
}

func TestMessageIDUnique(t *testing.T) {
	m1 := Message{Src: "a", Dst: "b", Seq: 1}
	m2 := Message{Src: "a", Dst: "b", Seq: 2}
	m3 := Message{Src: "a", Dst: "c", Seq: 1}
	if m1.ID() == m2.ID() || m1.ID() == m3.ID() {
		t.Error("message IDs collide")
	}
}

func TestSortTuples(t *testing.T) {
	ts := []Tuple{
		MakeTuple("b", I(1)),
		MakeTuple("a", I(2)),
		MakeTuple("a", I(1)),
	}
	SortTuples(ts)
	if ts[0].Key() != "a(1)" || ts[1].Key() != "a(2)" || ts[2].Key() != "b(1)" {
		t.Errorf("sorted order: %v", ts)
	}
}

func TestTupleQuickRoundTrip(t *testing.T) {
	f := func(rel string, strArg string, intArg int64) bool {
		tup := MakeTuple(rel, S(strArg), I(intArg))
		var got Tuple
		if err := wire.Decode(wire.Encode(tup), &got); err != nil {
			return false
		}
		return got.Equal(tup)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTimeString(t *testing.T) {
	if got := (2 * Second).String(); got != "2.000s" {
		t.Errorf("Time.String = %q", got)
	}
	if got := (1500 * Millisecond).Seconds(); got != 1.5 {
		t.Errorf("Seconds = %v", got)
	}
}

func TestPolarityString(t *testing.T) {
	if PolAppear.String() != "+" || PolDisappear.String() != "-" || PolBoth.String() != "!" {
		t.Error("polarity strings wrong")
	}
}
