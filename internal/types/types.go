// Package types defines the vocabulary shared by every layer of the SNP
// stack: nodes, logical time, tuples (the paper's system-model state, §3.1),
// update messages (±τ), and the input/output alphabet of the deterministic
// per-node state machines (Appendix A.2).
package types

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/wire"
)

// NodeID identifies a node in the distributed system.
type NodeID string

// Time is a node-local logical timestamp in nanoseconds. The paper interprets
// vertex timestamps relative to the hosting node (§3.2); the simulator gives
// every node its own (possibly skewed) clock.
type Time int64

// Convenient duration units for Time arithmetic.
const (
	Microsecond Time = 1_000
	Millisecond Time = 1_000_000
	Second      Time = 1_000_000_000
	Minute      Time = 60 * Second
)

func (t Time) String() string {
	return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
}

// Seconds returns t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// ---------------------------------------------------------------------------
// Values.

// ValueKind discriminates the variants of Value.
type ValueKind uint8

// Value kinds.
const (
	KindString ValueKind = iota
	KindInt
	KindNode
)

// Value is one argument of a tuple: a string, an integer, or a node
// identifier. Values are comparable with == and usable as map keys.
type Value struct {
	Kind ValueKind
	Str  string // KindString, KindNode
	Int  int64  // KindInt
}

// S returns a string value.
func S(s string) Value { return Value{Kind: KindString, Str: s} }

// I returns an integer value.
func I(i int64) Value { return Value{Kind: KindInt, Int: i} }

// N returns a node-identifier value.
func N(id NodeID) Value { return Value{Kind: KindNode, Str: string(id)} }

// Node returns the value as a NodeID. It panics if the value is not a node;
// rule location attributes are validated at rule-compile time.
func (v Value) Node() NodeID {
	if v.Kind != KindNode {
		//snpvet:allow nopanic rule location attributes are validated at rule-compile time (dlog.Program), so no peer-influenced value reaches this accessor with the wrong kind
		panic(fmt.Sprintf("types: value %v is not a node", v))
	}
	return NodeID(v.Str)
}

// IsNode reports whether the value is a node identifier.
func (v Value) IsNode() bool { return v.Kind == KindNode }

func (v Value) String() string {
	switch v.Kind {
	case KindString:
		return v.Str
	case KindInt:
		return strconv.FormatInt(v.Int, 10)
	case KindNode:
		return "@" + v.Str
	default:
		return fmt.Sprintf("?kind%d", v.Kind)
	}
}

// appendTo writes the value's canonical form into sb without allocating
// intermediate strings (the tuple-key hot path).
func (v Value) appendTo(sb *strings.Builder) {
	switch v.Kind {
	case KindString:
		sb.WriteString(v.Str)
	case KindInt:
		var buf [20]byte
		sb.Write(strconv.AppendInt(buf[:0], v.Int, 10))
	case KindNode:
		sb.WriteByte('@')
		sb.WriteString(v.Str)
	default:
		sb.WriteString(v.String())
	}
}

// Less imposes a total order on values (kind, then payload), used to make
// iteration deterministic.
func (v Value) Less(o Value) bool {
	if v.Kind != o.Kind {
		return v.Kind < o.Kind
	}
	if v.Kind == KindInt {
		return v.Int < o.Int
	}
	return v.Str < o.Str
}

// MarshalWire implements wire.Marshaler.
func (v Value) MarshalWire(w *wire.Writer) {
	w.Byte(byte(v.Kind))
	switch v.Kind {
	case KindInt:
		w.Int(v.Int)
	default:
		w.String(v.Str)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (v *Value) UnmarshalWire(r *wire.Reader) error {
	v.Kind = ValueKind(r.Byte())
	switch v.Kind {
	case KindInt:
		v.Int = r.Int()
	case KindString, KindNode:
		v.Str = r.String()
	default:
		if r.Err() == nil {
			return fmt.Errorf("types: invalid value kind %d", v.Kind)
		}
	}
	return r.Err()
}

// ---------------------------------------------------------------------------
// Tuples.

// Tuple is one item of system state: a relation name plus arguments. By
// convention Args[0] is the tuple's location attribute (the paper writes
// link(@r,a): the tuple lives on r). Tuples are immutable after construction.
type Tuple struct {
	Rel  string
	Args []Value
	key  string // canonical form, computed once
}

// MakeTuple constructs a tuple and precomputes its canonical key.
func MakeTuple(rel string, args ...Value) Tuple {
	t := Tuple{Rel: rel, Args: args}
	t.key = t.computeKey()
	return t
}

func (t Tuple) computeKey() string {
	var sb strings.Builder
	sb.Grow(len(t.Rel) + 2 + 12*len(t.Args))
	sb.WriteString(t.Rel)
	sb.WriteByte('(')
	for i, a := range t.Args {
		if i > 0 {
			sb.WriteByte(',')
		}
		a.appendTo(&sb)
	}
	sb.WriteByte(')')
	return sb.String()
}

// Key returns the canonical string form of the tuple; equal tuples have
// equal keys. It is valid for tuples built with MakeTuple or decoded from
// the wire.
func (t Tuple) Key() string {
	if t.key == "" && t.Rel != "" {
		return t.computeKey()
	}
	return t.key
}

func (t Tuple) String() string { return t.Key() }

// Loc returns the tuple's location attribute (Args[0] as a node).
func (t Tuple) Loc() NodeID { return t.Args[0].Node() }

// HasLoc reports whether the tuple has a node-valued location attribute.
func (t Tuple) HasLoc() bool { return len(t.Args) > 0 && t.Args[0].IsNode() }

// Equal reports whether two tuples are identical. It compares structure
// directly (values are comparable), so it never recomputes canonical keys
// the way a Key() comparison on a zero-cached tuple would.
func (t Tuple) Equal(o Tuple) bool {
	if t.Rel != o.Rel || len(t.Args) != len(o.Args) {
		return false
	}
	for i := range t.Args {
		if t.Args[i] != o.Args[i] {
			return false
		}
	}
	return true
}

// MarshalWire implements wire.Marshaler.
func (t Tuple) MarshalWire(w *wire.Writer) {
	w.String(t.Rel)
	w.Uint(uint64(len(t.Args)))
	for _, a := range t.Args {
		a.MarshalWire(w)
	}
}

// UnmarshalWire implements wire.Unmarshaler.
func (t *Tuple) UnmarshalWire(r *wire.Reader) error {
	t.Rel = r.String()
	n := r.Count()
	if r.Err() != nil {
		return r.Err()
	}
	if n > 1<<16 {
		return fmt.Errorf("types: tuple arity %d too large", n)
	}
	t.Args = make([]Value, n)
	for i := range t.Args {
		if err := t.Args[i].UnmarshalWire(r); err != nil {
			return err
		}
	}
	t.key = t.computeKey()
	return r.Err()
}

// SortTuples sorts tuples by canonical key, for deterministic iteration.
func SortTuples(ts []Tuple) {
	sort.Slice(ts, func(i, j int) bool { return ts[i].Key() < ts[j].Key() })
}

// ---------------------------------------------------------------------------
// Messages.

// Polarity says what an update message asserts about its tuple (§3.1: +τ
// when τ is derived or inserted, −τ when it is underived or removed).
// PolBoth is a transient event tuple: it appears and immediately disappears
// at the receiver; it exists so protocol events (e.g. a Chord lookup hop)
// cost one message instead of a +τ/−τ pair.
type Polarity uint8

// Polarity values.
const (
	PolAppear    Polarity = iota // +τ
	PolDisappear                 // −τ
	PolBoth                      // transient event tuple
)

func (p Polarity) String() string {
	switch p {
	case PolAppear:
		return "+"
	case PolDisappear:
		return "-"
	case PolBoth:
		return "!"
	default:
		return "?"
	}
}

// Message is a tuple-update notification from Src to Dst. Seq is assigned by
// the sender per destination and makes every message unique (Appendix A.3
// requires that each message is sent at most once).
type Message struct {
	Src      NodeID
	Dst      NodeID
	Pol      Polarity
	Tuple    Tuple
	SendTime Time // txmit(m): the sender's clock when the message was logged
	Seq      uint64
}

// ID returns a unique identity for the message.
func (m Message) ID() MessageID { return MessageID{m.Src, m.Dst, m.Seq} }

// MessageID identifies a message: sender, receiver and sender-assigned
// sequence number.
type MessageID struct {
	Src NodeID
	Dst NodeID
	Seq uint64
}

func (m Message) String() string {
	return fmt.Sprintf("%s%s %s->%s #%d @%v", m.Pol, m.Tuple, m.Src, m.Dst, m.Seq, m.SendTime)
}

// MarshalWire implements wire.Marshaler.
func (m Message) MarshalWire(w *wire.Writer) {
	w.String(string(m.Src))
	w.String(string(m.Dst))
	w.Byte(byte(m.Pol))
	m.Tuple.MarshalWire(w)
	w.Int(int64(m.SendTime))
	w.Uint(m.Seq)
}

// UnmarshalWire implements wire.Unmarshaler.
func (m *Message) UnmarshalWire(r *wire.Reader) error {
	m.Src = NodeID(r.String())
	m.Dst = NodeID(r.String())
	m.Pol = Polarity(r.Byte())
	if err := m.Tuple.UnmarshalWire(r); err != nil {
		return err
	}
	m.SendTime = Time(r.Int())
	m.Seq = r.Uint()
	return r.Err()
}

// ---------------------------------------------------------------------------
// State-machine inputs and outputs (Appendix A.2).

// EventKind discriminates history events.
type EventKind uint8

// Event kinds. EvSnd appears in histories/logs but is never fed to the state
// machine (it is checked against the machine's outputs instead).
const (
	EvIns EventKind = iota // base-tuple (or maybe-rule head) insertion
	EvDel                  // base-tuple (or maybe-rule head) deletion
	EvRcv                  // message arrival
	EvSnd                  // message transmission
)

func (k EventKind) String() string {
	switch k {
	case EvIns:
		return "ins"
	case EvDel:
		return "del"
	case EvRcv:
		return "rcv"
	case EvSnd:
		return "snd"
	default:
		return fmt.Sprintf("ev%d", k)
	}
}

// Event is one step of a node's history. For EvIns/EvDel, Tuple is the
// affected tuple; MaybeRule and MaybeBody are set when the event is a
// 'maybe' rule firing (§3.4) rather than a plain base-tuple change, and
// Replaces lists tuples whose disappearance (at the same instant) causally
// precedes this insertion (the paper's constraint extension: "if tuple δ
// replaces tuple γ, the explanation of δ's appearance should include the
// disappearance of γ"). For EvRcv/EvSnd, Msg is the message; AckID is set
// instead of Msg when the event is an acknowledgment.
type Event struct {
	Kind      EventKind
	Node      NodeID
	Time      Time
	Tuple     Tuple
	MaybeRule string
	MaybeBody []Tuple
	Replaces  []Tuple
	Msg       *Message
	AckID     *MessageID
	AckTime   Time // for acks: the acknowledging node's timestamp t_y (§5.4)
	// SameBatch marks the second and later receives expanded from one
	// envelope: the batch is a single input, so the GCA must not flag the
	// node's pending outputs between them.
	SameBatch bool
}

// IsAck reports whether the event is an acknowledgment send or receipt.
func (e Event) IsAck() bool { return e.AckID != nil }

func (e Event) String() string {
	switch e.Kind {
	case EvIns, EvDel:
		return fmt.Sprintf("%s(%s, %s, %v)", e.Kind, e.Node, e.Tuple, e.Time)
	default:
		return fmt.Sprintf("%s(%s, %s, %v)", e.Kind, e.Node, e.Msg, e.Time)
	}
}

// OutputKind discriminates state-machine outputs.
type OutputKind uint8

// Output kinds.
const (
	OutDerive   OutputKind = iota // der(τ): one derivation of τ came into existence
	OutUnderive                   // und(τ): one derivation of τ ceased
	OutSend                       // snd(m): the node must transmit m
)

// Output is one state-machine output. For OutDerive/OutUnderive, Rule names
// the derivation rule, Body lists the body tuples of the firing, and
// First/Last report the reference-count transition: First is true when this
// derivation made the tuple appear (count 0→1), Last when the underivation
// made it disappear (count 1→0). The graph-construction algorithm creates
// appear/disappear vertices only on those transitions (§3.2, Figure 2 shows
// one EXIST vertex fed by two DERIVE vertices).
type Output struct {
	Kind     OutputKind
	Tuple    Tuple
	Rule     string
	Body     []Tuple
	Replaces []Tuple
	First    bool
	Last     bool
	Msg      *Message
}

func (o Output) String() string {
	switch o.Kind {
	case OutDerive:
		return fmt.Sprintf("der(%s via %s)", o.Tuple, o.Rule)
	case OutUnderive:
		return fmt.Sprintf("und(%s via %s)", o.Tuple, o.Rule)
	case OutSend:
		return fmt.Sprintf("snd(%s)", o.Msg)
	default:
		return fmt.Sprintf("out%d", o.Kind)
	}
}

// Belief names one remote node whose +τ notification supports a tuple.
type Belief struct {
	Origin NodeID
	Since  Time
}

// ExtantTuple describes one tuple a node currently holds, for checkpoints
// (§5.6) and for seeding replay: the tuple, when it appeared, whether it
// exists locally (vs. only being believed), and who it is believed from.
type ExtantTuple struct {
	Tuple    Tuple
	Appeared Time
	Local    bool
	Believed []Belief
}

// StateDumper is implemented by machines that can enumerate their extant
// tuples; the graph recorder needs it to write checkpoints.
type StateDumper interface {
	DumpExtants() []ExtantTuple
}

// Machine is the deterministic per-node state machine Ai of Appendix A.2.
// Inputs are EvIns/EvDel/EvRcv events; outputs are derivations,
// underivations, and message sends. Implementations must be deterministic:
// the same event sequence must always produce the same output sequence
// (§5.2, assumption 6). Snapshot/Restore support checkpointing (§5.6).
type Machine interface {
	// Step feeds one input event and returns the outputs it provokes, in a
	// deterministic order.
	Step(ev Event) []Output
	// Snapshot returns an opaque, canonical encoding of the machine's state.
	Snapshot() []byte
	// Restore replaces the machine's state with a snapshot.
	Restore(snapshot []byte) error
}

// MachineFactory creates a fresh machine for a node; replay uses it to
// re-execute a log from scratch.
type MachineFactory func(self NodeID) Machine
