// Package wire implements a canonical, deterministic binary encoding.
//
// Every byte that SNooPy hashes, signs, or sends over the network is produced
// by this package, so the encoding must be stable: the same logical value
// always encodes to the same bytes, regardless of map iteration order or
// platform. The format is a simple length-prefixed scheme:
//
//   - unsigned integers: LEB128 varint
//   - signed integers: zig-zag varint
//   - byte strings: varint length followed by the raw bytes
//   - composites: fields concatenated in a fixed, documented order
//
// The package is also the source of truth for message sizes in the
// evaluation harness: len(Writer.Bytes()) is the wire size of a value.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"sync"
)

// Marshaler is implemented by types that can append their canonical
// encoding to a Writer.
type Marshaler interface {
	MarshalWire(w *Writer)
}

// Unmarshaler is implemented by types that can decode themselves from a
// Reader.
type Unmarshaler interface {
	UnmarshalWire(r *Reader) error
}

// A Writer accumulates a canonical encoding. The zero value is ready to use.
type Writer struct {
	buf []byte
}

// NewWriter returns a Writer with the given initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// writerPool recycles Writers for transient encodings (sizing, hashing,
// signing material). Entries whose buffers grew past maxPooledCap are
// dropped rather than pinned in the pool.
var writerPool = sync.Pool{
	New: func() any { return NewWriter(1024) },
}

const maxPooledCap = 1 << 16

// GetWriter returns an empty Writer from the process-wide pool. Use it for
// encodings that are consumed before the next write — hash input, signature
// material, size probes — and release it with PutWriter. Safe for
// concurrent use.
func GetWriter() *Writer {
	w := writerPool.Get().(*Writer)
	w.Reset()
	return w
}

// PutWriter returns w to the pool. The caller must not retain w or any
// slice returned by w.Bytes() afterwards.
func PutWriter(w *Writer) {
	if cap(w.buf) <= maxPooledCap {
		writerPool.Put(w)
	}
}

// Bytes returns the encoded bytes. The slice aliases the Writer's internal
// buffer and is invalidated by further writes.
func (w *Writer) Bytes() []byte { return w.buf }

// Len returns the number of bytes written so far.
func (w *Writer) Len() int { return len(w.buf) }

// Reset discards all written data, retaining the buffer.
func (w *Writer) Reset() { w.buf = w.buf[:0] }

// Uint appends an unsigned varint.
func (w *Writer) Uint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Int appends a signed (zig-zag) varint.
func (w *Writer) Int(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Bool appends a boolean as a single byte (0 or 1).
func (w *Writer) Bool(v bool) {
	if v {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

// Byte appends a single raw byte.
func (w *Writer) Byte(b byte) { w.buf = append(w.buf, b) }

// Float appends a float64 as its IEEE-754 bits (big endian, fixed width).
func (w *Writer) Float(v float64) {
	w.buf = binary.BigEndian.AppendUint64(w.buf, math.Float64bits(v))
}

// Bytes appends a length-prefixed byte string.
func (w *Writer) BytesField(b []byte) {
	w.Uint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Raw appends bytes without a length prefix. Use only for fixed-width data.
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// Value appends a Marshaler.
func (w *Writer) Value(m Marshaler) { m.MarshalWire(w) }

// Errors returned by Reader.
var (
	ErrTruncated = errors.New("wire: truncated input")
	ErrOverflow  = errors.New("wire: varint overflows 64 bits")
	ErrTrailing  = errors.New("wire: trailing bytes after value")
)

// A Reader decodes values produced by a Writer. Decoding methods record the
// first error encountered; subsequent calls return zero values, so a decode
// sequence can run unconditionally and check Err once at the end.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader returns a Reader over buf. The Reader does not copy buf.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports how many undecoded bytes remain.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

// Finish returns an error if decoding failed or bytes remain.
func (r *Reader) Finish() error {
	if r.err != nil {
		return r.err
	}
	if r.off != len(r.buf) {
		return fmt.Errorf("%w: %d bytes", ErrTrailing, len(r.buf)-r.off)
	}
	return nil
}

func (r *Reader) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Uint decodes an unsigned varint.
func (r *Reader) Uint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrTruncated)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Int decodes a signed (zig-zag) varint.
func (r *Reader) Int() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.buf[r.off:])
	switch {
	case n > 0:
		r.off += n
		return v
	case n == 0:
		r.fail(ErrTruncated)
	default:
		r.fail(ErrOverflow)
	}
	return 0
}

// Bool decodes a boolean.
func (r *Reader) Bool() bool {
	b := r.Byte()
	if r.err != nil {
		return false
	}
	if b > 1 {
		r.fail(fmt.Errorf("wire: invalid bool byte %#x", b))
		return false
	}
	return b == 1
}

// Byte decodes a single raw byte.
func (r *Reader) Byte() byte {
	if r.err != nil {
		return 0
	}
	if r.off >= len(r.buf) {
		r.fail(ErrTruncated)
		return 0
	}
	b := r.buf[r.off]
	r.off++
	return b
}

// Float decodes a float64.
func (r *Reader) Float() float64 {
	b := r.Raw(8)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.BigEndian.Uint64(b))
}

// Count decodes an element count and validates it against the undecoded
// bytes that remain. Every encoded element occupies at least one byte, so
// a count past Remaining() can only come from corrupt or hostile input —
// rejecting it here keeps a claimed count from driving an allocation far
// larger than the input that carries it.
func (r *Reader) Count() int {
	n := r.Uint()
	if r.err != nil {
		return 0
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(fmt.Errorf("%w: count %d exceeds %d remaining bytes", ErrTruncated, n, len(r.buf)-r.off))
		return 0
	}
	return int(n)
}

// BytesField decodes a length-prefixed byte string. The result is a copy.
func (r *Reader) BytesField() []byte {
	n := r.Uint()
	if r.err != nil {
		return nil
	}
	if n > uint64(r.Remaining()) {
		r.fail(ErrTruncated)
		return nil
	}
	out := make([]byte, n)
	copy(out, r.buf[r.off:])
	r.off += int(n)
	return out
}

// String decodes a length-prefixed string.
func (r *Reader) String() string {
	n := r.Uint()
	if r.err != nil {
		return ""
	}
	if n > uint64(len(r.buf)-r.off) {
		r.fail(ErrTruncated)
		return ""
	}
	s := string(r.buf[r.off : r.off+int(n)])
	r.off += int(n)
	return s
}

// Raw returns the next n bytes without a length prefix. The returned slice
// aliases the Reader's buffer.
func (r *Reader) Raw(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n > len(r.buf)-r.off {
		r.fail(ErrTruncated)
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// Value decodes into an Unmarshaler.
func (r *Reader) Value(m Unmarshaler) {
	if r.err != nil {
		return
	}
	if err := m.UnmarshalWire(r); err != nil {
		r.fail(err)
	}
}

// Encode returns the canonical encoding of m.
func Encode(m Marshaler) []byte {
	w := NewWriter(64)
	m.MarshalWire(w)
	return w.Bytes()
}

// Decode decodes buf into m and verifies the buffer is fully consumed.
func Decode(buf []byte, m Unmarshaler) error {
	r := NewReader(buf)
	r.Value(m)
	if r.err != nil {
		return r.err
	}
	return r.Finish()
}

// Size returns the encoded size of m in bytes.
func Size(m Marshaler) int {
	w := GetWriter()
	m.MarshalWire(w)
	n := w.Len()
	PutWriter(w)
	return n
}
