package wire

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestUintRoundTrip(t *testing.T) {
	cases := []uint64{0, 1, 127, 128, 300, 1 << 20, math.MaxUint64}
	for _, v := range cases {
		w := NewWriter(0)
		w.Uint(v)
		r := NewReader(w.Bytes())
		if got := r.Uint(); got != v {
			t.Errorf("Uint(%d) round-tripped to %d", v, got)
		}
		if err := r.Finish(); err != nil {
			t.Errorf("Uint(%d): %v", v, err)
		}
	}
}

func TestIntRoundTrip(t *testing.T) {
	cases := []int64{0, 1, -1, 63, -64, 1 << 40, math.MinInt64, math.MaxInt64}
	for _, v := range cases {
		w := NewWriter(0)
		w.Int(v)
		r := NewReader(w.Bytes())
		if got := r.Int(); got != v {
			t.Errorf("Int(%d) round-tripped to %d", v, got)
		}
	}
}

func TestMixedRoundTrip(t *testing.T) {
	w := NewWriter(0)
	w.Uint(42)
	w.String("hello")
	w.Bool(true)
	w.Bool(false)
	w.BytesField([]byte{1, 2, 3})
	w.Int(-7)
	w.Float(3.5)
	w.Byte(0xAB)

	r := NewReader(w.Bytes())
	if got := r.Uint(); got != 42 {
		t.Errorf("Uint = %d", got)
	}
	if got := r.String(); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Bool(); !got {
		t.Errorf("Bool#1 = %v", got)
	}
	if got := r.Bool(); got {
		t.Errorf("Bool#2 = %v", got)
	}
	if got := r.BytesField(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("BytesField = %v", got)
	}
	if got := r.Int(); got != -7 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Float(); got != 3.5 {
		t.Errorf("Float = %v", got)
	}
	if got := r.Byte(); got != 0xAB {
		t.Errorf("Byte = %#x", got)
	}
	if err := r.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestTruncated(t *testing.T) {
	w := NewWriter(0)
	w.String("hello world")
	full := w.Bytes()
	for i := 0; i < len(full); i++ {
		r := NewReader(full[:i])
		_ = r.String()
		if r.Err() == nil {
			t.Errorf("prefix of length %d: expected error", i)
		}
	}
}

func TestTrailing(t *testing.T) {
	w := NewWriter(0)
	w.Uint(1)
	w.Uint(2)
	r := NewReader(w.Bytes())
	_ = r.Uint()
	if err := r.Finish(); err == nil {
		t.Fatal("Finish with trailing bytes: expected error")
	}
}

func TestErrorSticky(t *testing.T) {
	r := NewReader(nil)
	_ = r.Uint() // fails
	if r.Err() == nil {
		t.Fatal("expected error on empty input")
	}
	// Subsequent reads must return zero values and keep the first error.
	if got := r.String(); got != "" {
		t.Errorf("String after error = %q", got)
	}
	if got := r.Int(); got != 0 {
		t.Errorf("Int after error = %d", got)
	}
}

func TestInvalidBool(t *testing.T) {
	r := NewReader([]byte{7})
	_ = r.Bool()
	if r.Err() == nil {
		t.Fatal("expected error for bool byte 7")
	}
}

func TestResetReuse(t *testing.T) {
	w := NewWriter(8)
	w.String("abc")
	first := append([]byte(nil), w.Bytes()...)
	w.Reset()
	w.String("abc")
	if !bytes.Equal(first, w.Bytes()) {
		t.Fatal("Reset changed encoding")
	}
}

// TestDeterminism checks the core property this package exists for: equal
// inputs produce byte-identical encodings.
func TestDeterminism(t *testing.T) {
	f := func(a uint64, b int64, s string, raw []byte, flag bool) bool {
		enc := func() []byte {
			w := NewWriter(0)
			w.Uint(a)
			w.Int(b)
			w.String(s)
			w.BytesField(raw)
			w.Bool(flag)
			return w.Bytes()
		}
		return bytes.Equal(enc(), enc())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRoundTrip property-tests that decode(encode(x)) == x.
func TestQuickRoundTrip(t *testing.T) {
	f := func(a uint64, b int64, s string, raw []byte, flag bool) bool {
		w := NewWriter(0)
		w.Uint(a)
		w.Int(b)
		w.String(s)
		w.BytesField(raw)
		w.Bool(flag)
		r := NewReader(w.Bytes())
		ga, gb, gs, graw, gflag := r.Uint(), r.Int(), r.String(), r.BytesField(), r.Bool()
		if err := r.Finish(); err != nil {
			return false
		}
		return ga == a && gb == b && gs == s && bytes.Equal(graw, raw) && gflag == flag
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
