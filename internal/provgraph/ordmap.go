package provgraph

import (
	"cmp"
	"slices"
	"sort"

	"repro/internal/types"
)

// ordmap is a map with incrementally maintained sorted keys. The GCA flags
// pending sends, unacknowledged sends, and provisional receives on *every*
// event; sorting the whole bookkeeping map each time was one of the measured
// hot spots, so the order is kept up to date at insert/delete instead
// (O(log n) search + O(n) memmove on mutation, O(1) on iteration).
type ordmap[K comparable, V any] struct {
	cmp  func(a, b K) int
	m    map[K]V
	keys []K
}

func newOrdmap[K comparable, V any](cmp func(a, b K) int) *ordmap[K, V] {
	return &ordmap[K, V]{cmp: cmp, m: make(map[K]V)}
}

func (o *ordmap[K, V]) get(k K) (V, bool) {
	v, ok := o.m[k]
	return v, ok
}

func (o *ordmap[K, V]) size() int { return len(o.m) }

func (o *ordmap[K, V]) set(k K, v V) {
	if _, ok := o.m[k]; !ok {
		i, _ := slices.BinarySearchFunc(o.keys, k, o.cmp)
		o.keys = slices.Insert(o.keys, i, k)
	}
	o.m[k] = v
}

func (o *ordmap[K, V]) del(k K) {
	if _, ok := o.m[k]; !ok {
		return
	}
	delete(o.m, k)
	if i, found := slices.BinarySearchFunc(o.keys, k, o.cmp); found {
		o.keys = slices.Delete(o.keys, i, i+1)
	}
}

// snapshot returns a copy of the sorted keys, safe to iterate while the map
// is mutated (the flag-and-delete passes remove most of what they visit).
func (o *ordmap[K, V]) snapshot() []K {
	return append([]K(nil), o.keys...)
}

// cmpMessageID orders message IDs by (Src, Dst, Seq), matching the
// historical pendKey sort.
func cmpMessageID(a, b types.MessageID) int {
	if c := cmp.Compare(a.Src, b.Src); c != 0 {
		return c
	}
	if c := cmp.Compare(a.Dst, b.Dst); c != 0 {
		return c
	}
	return cmp.Compare(a.Seq, b.Seq)
}

// sortedNodeKeys returns the map's node IDs in sorted order (used only at
// Finalize, once per audit).
func sortedNodeKeys[V any](m map[types.NodeID]V) []types.NodeID {
	out := make([]types.NodeID, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
