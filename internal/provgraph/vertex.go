// Package provgraph implements the SNP provenance graph of §3 and the
// graph-construction algorithm (GCA) of Appendix B, Figures 10–11.
//
// Vertices represent state, state changes, and node interactions; each
// vertex is hosted by exactly one node (host(v), §3.2), which is what makes
// the graph partitionable and reconstructible per node (Theorem 2). Each
// vertex carries a color: black (legitimate), red (provable misbehavior), or
// yellow (not yet verified). Color dominance is red > black > yellow; a
// vertex's color can only move up the dominance order (Appendix B.3).
package provgraph

import (
	"fmt"
	"strings"

	"repro/internal/types"
)

// VertexType enumerates the twelve vertex types of §3.2.
type VertexType uint8

// The seven local vertex types followed by the five interaction types.
const (
	VInsert VertexType = iota
	VDelete
	VAppear
	VDisappear
	VExist
	VDerive
	VUnderive
	VSend
	VReceive
	VBelieveAppear
	VBelieveDisappear
	VBelieve
)

var vertexNames = [...]string{
	"INSERT", "DELETE", "APPEAR", "DISAPPEAR", "EXIST", "DERIVE", "UNDERIVE",
	"SEND", "RECEIVE", "BELIEVE-APPEAR", "BELIEVE-DISAPPEAR", "BELIEVE",
}

func (t VertexType) String() string {
	if int(t) < len(vertexNames) {
		return vertexNames[t]
	}
	return fmt.Sprintf("VERTEX(%d)", t)
}

// Color is a vertex color (§3.2, §4.2).
type Color uint8

// Colors, in dominance order: red > black > yellow (Appendix B.1).
const (
	Yellow Color = iota
	Black
	Red
)

func (c Color) String() string {
	switch c {
	case Yellow:
		return "yellow"
	case Black:
		return "black"
	case Red:
		return "red"
	default:
		return fmt.Sprintf("color(%d)", c)
	}
}

// Dominates reports whether c is at least as dominant as o.
func (c Color) Dominates(o Color) bool { return c >= o }

// Forever is the open end of an interval ("now"/∞ in the paper).
const Forever = types.Time(1<<63 - 1)

// Vertex is one vertex of the provenance graph.
//
// Field usage by type:
//   - insert/delete/appear/disappear: Tuple, T1 (the instant)
//   - exist: Tuple, [T1, T2] (T2 == Forever while open)
//   - derive/underive: Tuple, Rule, T1
//   - send/receive: Msg, T1; Remote is the peer node
//   - believe-appear/believe-disappear: Tuple, Remote (origin node), T1
//   - believe: Tuple, Remote, [T1, T2]
type Vertex struct {
	Type   VertexType
	Host   types.NodeID
	Tuple  types.Tuple
	Rule   string
	Remote types.NodeID
	Msg    *types.Message
	T1     types.Time
	T2     types.Time
	Color  Color

	// FromCheckpoint marks exist/believe vertices reconstructed from a
	// checkpoint rather than observed appearing; their causal predecessors
	// live in an earlier log segment (§5.6).
	FromCheckpoint bool

	id  string
	in  []*Vertex
	out []*Vertex
}

// ID returns a stable unique identifier for the vertex.
func (v *Vertex) ID() string {
	if v.id == "" {
		v.id = v.computeID()
	}
	return v.id
}

func (v *Vertex) computeID() string {
	var sb strings.Builder
	sb.WriteString(v.Type.String())
	sb.WriteByte('|')
	sb.WriteString(string(v.Host))
	sb.WriteByte('|')
	switch v.Type {
	case VSend, VReceive:
		// Identity includes the payload: a node that transmits different
		// content under a sequence number its machine assigned to another
		// message must yield a distinct (red) vertex.
		id := v.Msg.ID()
		fmt.Fprintf(&sb, "%s>%s#%d|%s%s", id.Src, id.Dst, id.Seq, v.Msg.Pol, v.Msg.Tuple.Key())
	case VExist, VBelieve:
		// Interval vertices are keyed by their opening time so that a tuple
		// that exists, disappears, and reappears yields distinct epochs.
		fmt.Fprintf(&sb, "%s|%s|%d", v.Remote, v.Tuple.Key(), v.T1)
	case VDerive, VUnderive:
		// Remote carries the body fingerprint so that two distinct firings
		// of one rule for one tuple at one instant remain distinguishable.
		fmt.Fprintf(&sb, "%s|%s|%d|%s", v.Rule, v.Tuple.Key(), v.T1, v.Remote)
	default:
		fmt.Fprintf(&sb, "%s|%s|%d", v.Remote, v.Tuple.Key(), v.T1)
	}
	return sb.String()
}

// In returns the predecessor vertices (causes).
func (v *Vertex) In() []*Vertex { return v.in }

// Out returns the successor vertices (effects).
func (v *Vertex) Out() []*Vertex { return v.out }

// Interval reports whether the vertex is an interval type (exist/believe).
func (v *Vertex) Interval() bool { return v.Type == VExist || v.Type == VBelieve }

// Open reports whether an interval vertex is still open.
func (v *Vertex) Open() bool { return v.Interval() && v.T2 == Forever }

// Label renders the vertex like the paper's figures, e.g.
// "EXIST(c, bestCost(@c,d,5), [3,now])".
func (v *Vertex) Label() string {
	var sb strings.Builder
	sb.WriteString(v.Type.String())
	sb.WriteByte('(')
	sb.WriteString(string(v.Host))
	switch v.Type {
	case VSend, VReceive:
		fmt.Fprintf(&sb, ", %s, %s%s, %s", v.Remote, v.Msg.Pol, v.Msg.Tuple, fmtT(v.T1))
	case VExist:
		fmt.Fprintf(&sb, ", %s, [%s, %s]", v.Tuple, fmtT(v.T1), fmtT(v.T2))
	case VBelieve:
		fmt.Fprintf(&sb, ", %s, %s, [%s, %s]", v.Remote, v.Tuple, fmtT(v.T1), fmtT(v.T2))
	case VBelieveAppear, VBelieveDisappear:
		fmt.Fprintf(&sb, ", %s, %s, %s", v.Remote, v.Tuple, fmtT(v.T1))
	case VDerive, VUnderive:
		fmt.Fprintf(&sb, ", %s, %s, %s", v.Tuple, v.Rule, fmtT(v.T1))
	default:
		fmt.Fprintf(&sb, ", %s, %s", v.Tuple, fmtT(v.T1))
	}
	sb.WriteByte(')')
	return sb.String()
}

func fmtT(t types.Time) string {
	if t == Forever {
		return "now"
	}
	return fmt.Sprintf("t%d", t)
}

func (v *Vertex) String() string { return v.Label() }

// legalEdges is Table 1 of the paper: for each vertex type, the set of
// vertex types its outbound edges may point to. One extension beyond the
// table: disappear → appear, the §3.4 constraint edge recording that one
// tuple's appearance was caused by another's replacement.
var legalEdges = map[VertexType]map[VertexType]bool{
	VInsert:           {VAppear: true},
	VDelete:           {VDisappear: true},
	VAppear:           {VExist: true, VSend: true, VDerive: true},
	VDisappear:        {VExist: true, VSend: true, VUnderive: true, VAppear: true},
	VExist:            {VDerive: true, VUnderive: true},
	VDerive:           {VAppear: true},
	VUnderive:         {VDisappear: true},
	VSend:             {VReceive: true},
	VReceive:          {VBelieveAppear: true, VBelieveDisappear: true},
	VBelieveAppear:    {VBelieve: true, VDerive: true},
	VBelieveDisappear: {VBelieve: true, VUnderive: true},
	VBelieve:          {VDerive: true, VUnderive: true},
}

// LegalEdge reports whether an edge from a vertex of type a to one of type b
// is permitted by Table 1 (plus the constraint extension).
func LegalEdge(a, b VertexType) bool { return legalEdges[a][b] }
