package provgraph

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/types"
)

// Graph is a provenance graph: a set of vertices plus directed edges, with
// the lookup indices the GCA needs (open exist/believe vertices, appear
// vertices by instant). The zero value is not ready; use New.
type Graph struct {
	vertices map[string]*Vertex
	order    []*Vertex // insertion order, for deterministic iteration
	edges    map[[2]string]bool

	// openExist maps host|tuple to the open exist vertex, if any.
	openExist map[string]*Vertex
	// openBelieve maps host|origin|tuple to the open believe vertex.
	openBelieve map[string]*Vertex
	// instant indexes appear/disappear/believe-appear/believe-disappear
	// vertices by type|host|tuple|time (origin-wildcard, matching the
	// pseudocode's believe-appear(i,?,τ,t) lookups).
	instant map[string][]*Vertex
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vertices:    make(map[string]*Vertex),
		edges:       make(map[[2]string]bool),
		openExist:   make(map[string]*Vertex),
		openBelieve: make(map[string]*Vertex),
		instant:     make(map[string][]*Vertex),
	}
}

func existKey(host types.NodeID, tup types.Tuple) string {
	return string(host) + "|" + tup.Key()
}

func believeKey(host, origin types.NodeID, tup types.Tuple) string {
	return string(host) + "|" + string(origin) + "|" + tup.Key()
}

// instantKey is an internal index key; it is built without fmt because the
// GCA performs an instant lookup for every body tuple of every derivation.
func instantKey(t VertexType, host types.NodeID, tup types.Tuple, at types.Time) string {
	var sb strings.Builder
	sb.Grow(len(host) + len(tup.Key()) + 28)
	sb.WriteString(strconv.FormatUint(uint64(t), 10))
	sb.WriteByte('|')
	sb.WriteString(string(host))
	sb.WriteByte('|')
	sb.WriteString(tup.Key())
	sb.WriteByte('|')
	sb.WriteString(strconv.FormatInt(int64(at), 10))
	return sb.String()
}

// Add inserts v if no vertex with the same ID exists and returns the vertex
// that is in the graph afterwards (v or the pre-existing one).
func (g *Graph) Add(v *Vertex) *Vertex {
	if old, ok := g.vertices[v.ID()]; ok {
		return old
	}
	g.vertices[v.ID()] = v
	g.order = append(g.order, v)
	switch v.Type {
	case VExist:
		if v.Open() {
			g.openExist[existKey(v.Host, v.Tuple)] = v
		}
	case VBelieve:
		if v.Open() {
			g.openBelieve[believeKey(v.Host, v.Remote, v.Tuple)] = v
		}
	case VAppear, VDisappear, VBelieveAppear, VBelieveDisappear:
		k := instantKey(v.Type, v.Host, v.Tuple, v.T1)
		g.instant[k] = append(g.instant[k], v)
	}
	return v
}

// Get returns the vertex with the given ID, or nil.
func (g *Graph) Get(id string) *Vertex { return g.vertices[id] }

// Vertices returns all vertices in insertion order.
func (g *Graph) Vertices() []*Vertex { return g.order }

// Len returns the number of vertices.
func (g *Graph) Len() int { return len(g.order) }

// EdgeCount returns the number of edges.
func (g *Graph) EdgeCount() int { return len(g.edges) }

// AddEdge inserts the edge (from → to) if it is not already present. It
// returns an error for edges outside Table 1; the GCA never produces such
// edges, so an error indicates a bug in the caller.
func (g *Graph) AddEdge(from, to *Vertex) error {
	if !LegalEdge(from.Type, to.Type) {
		return fmt.Errorf("provgraph: illegal edge %s -> %s", from.Type, to.Type)
	}
	k := [2]string{from.ID(), to.ID()}
	if g.edges[k] {
		return nil
	}
	g.edges[k] = true
	from.out = append(from.out, to)
	to.in = append(to.in, from)
	return nil
}

// HasEdge reports whether the edge (from → to) is present.
func (g *Graph) HasEdge(from, to *Vertex) bool {
	return g.edges[[2]string{from.ID(), to.ID()}]
}

// OpenExist returns the open exist vertex for (host, tuple), or nil.
func (g *Graph) OpenExist(host types.NodeID, tup types.Tuple) *Vertex {
	return g.openExist[existKey(host, tup)]
}

// OpenBelieve returns the open believe vertex for (host, origin, tuple), or
// nil.
func (g *Graph) OpenBelieve(host, origin types.NodeID, tup types.Tuple) *Vertex {
	return g.openBelieve[believeKey(host, origin, tup)]
}

// OpenBelieveAny returns an open believe vertex on host for tuple from any
// origin (the pseudocode's believe(i,?,τ,[?,∞)) lookup). When several
// origins match, the one with the smallest origin ID is returned so the
// result is deterministic.
func (g *Graph) OpenBelieveAny(host types.NodeID, tup types.Tuple) *Vertex {
	var best *Vertex
	prefix := string(host) + "|"
	suffix := "|" + tup.Key()
	for k, v := range g.openBelieve {
		if len(k) >= len(prefix)+len(suffix) && k[:len(prefix)] == prefix && k[len(k)-len(suffix):] == suffix {
			if best == nil || v.Remote < best.Remote {
				best = v
			}
		}
	}
	return best
}

// CloseInterval closes an open exist/believe vertex at time t and
// deregisters it from the open index.
func (g *Graph) CloseInterval(v *Vertex, t types.Time) {
	if !v.Open() {
		return
	}
	v.T2 = t
	switch v.Type {
	case VExist:
		delete(g.openExist, existKey(v.Host, v.Tuple))
	case VBelieve:
		delete(g.openBelieve, believeKey(v.Host, v.Remote, v.Tuple))
	}
}

// AtInstant returns the vertices of the given instant type for (host, tuple)
// at exactly time t, in deterministic order.
func (g *Graph) AtInstant(t VertexType, host types.NodeID, tup types.Tuple, at types.Time) []*Vertex {
	vs := g.instant[instantKey(t, host, tup, at)]
	out := append([]*Vertex(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID() < out[j].ID() })
	return out
}

// FirstInstant returns the first vertex AtInstant would return, or nil. It
// scans for the minimum ID instead of copying and sorting the bucket; this
// is the GCA's single most frequent lookup.
func (g *Graph) FirstInstant(t VertexType, host types.NodeID, tup types.Tuple, at types.Time) *Vertex {
	var best *Vertex
	for _, v := range g.instant[instantKey(t, host, tup, at)] {
		if best == nil || v.ID() < best.ID() {
			best = v
		}
	}
	return best
}

// SetColor upgrades v's color following the dominance order
// red > black > yellow; downgrades are ignored (Appendix B.3: color
// transitions only move up).
func (g *Graph) SetColor(v *Vertex, c Color) {
	if c.Dominates(v.Color) {
		v.Color = c
	}
}

// ByHost returns the vertices hosted on node id, in insertion order.
func (g *Graph) ByHost(id types.NodeID) []*Vertex {
	var out []*Vertex
	for _, v := range g.order {
		if v.Host == id {
			out = append(out, v)
		}
	}
	return out
}

// TupleVertices returns all vertices about the given tuple on host, in
// insertion order. It is the entry point for provenance queries ("explain
// bestCost(@c,d,5)").
func (g *Graph) TupleVertices(host types.NodeID, tup types.Tuple) []*Vertex {
	var out []*Vertex
	for _, v := range g.order {
		if v.Host == host && v.Tuple.Key() == tup.Key() {
			out = append(out, v)
		}
	}
	return out
}

// RedVertices returns all red vertices, in insertion order.
func (g *Graph) RedVertices() []*Vertex {
	var out []*Vertex
	for _, v := range g.order {
		if v.Color == Red {
			out = append(out, v)
		}
	}
	return out
}

// HostsWithColor returns the set of hosts that have at least one vertex of
// color c, sorted.
func (g *Graph) HostsWithColor(c Color) []types.NodeID {
	seen := map[types.NodeID]bool{}
	for _, v := range g.order {
		if v.Color == c {
			seen[v.Host] = true
		}
	}
	out := make([]types.NodeID, 0, len(seen))
	for h := range seen {
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Subgraph reports whether every vertex and edge of g is present in h, with
// h's colors at least as dominant and intervals equal or narrowed (the ⊆*
// relation of Appendix B.2, used to state monotonicity).
func (g *Graph) Subgraph(h *Graph) bool {
	for _, v := range g.order {
		w := h.Get(v.ID())
		if w == nil {
			return false
		}
		if !w.Color.Dominates(v.Color) {
			return false
		}
		if v.Interval() && w.T2 > v.T2 {
			return false
		}
	}
	for e := range g.edges {
		if !h.edges[e] {
			return false
		}
	}
	return true
}

// Project returns the projection G|i of Appendix B.2: all vertices hosted
// on node id, plus any send/receive vertices on other nodes connected to
// them by an edge (those are copied with color yellow, since the projection
// cannot vouch for remote vertices).
func (g *Graph) Project(id types.NodeID) *Graph {
	p := New()
	include := map[string]bool{}
	for _, v := range g.order {
		if v.Host != id {
			continue
		}
		cp := *v
		cp.in, cp.out = nil, nil
		p.Add(&cp)
		include[v.ID()] = true
	}
	remote := func(v *Vertex) {
		if v.Host == id || (v.Type != VSend && v.Type != VReceive) {
			return
		}
		if include[v.ID()] {
			return
		}
		cp := *v
		cp.in, cp.out = nil, nil
		cp.Color = Yellow
		p.Add(&cp)
		include[v.ID()] = true
	}
	for _, v := range g.order {
		if v.Host != id {
			continue
		}
		for _, w := range v.in {
			remote(w)
		}
		for _, w := range v.out {
			remote(w)
		}
	}
	for e := range g.edges {
		if include[e[0]] && include[e[1]] {
			_ = p.AddEdge(p.Get(e[0]), p.Get(e[1]))
		}
	}
	return p
}

// Validate checks structural invariants: every edge is legal per Table 1,
// at most one open exist vertex per (host, tuple), and at most one open
// believe vertex per (host, origin, tuple). It returns the first violation.
func (g *Graph) Validate() error {
	for e := range g.edges {
		from, to := g.vertices[e[0]], g.vertices[e[1]]
		if from == nil || to == nil {
			return fmt.Errorf("provgraph: edge references missing vertex %v", e)
		}
		if !LegalEdge(from.Type, to.Type) {
			return fmt.Errorf("provgraph: illegal edge %s -> %s", from, to)
		}
	}
	open := map[string]int{}
	for _, v := range g.order {
		if v.Open() {
			var k string
			if v.Type == VExist {
				k = "e|" + existKey(v.Host, v.Tuple)
			} else {
				k = "b|" + believeKey(v.Host, v.Remote, v.Tuple)
			}
			open[k]++
			if open[k] > 1 {
				return fmt.Errorf("provgraph: %d open interval vertices for %s", open[k], k)
			}
		}
	}
	return nil
}
