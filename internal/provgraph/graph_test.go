package provgraph

import (
	"testing"
	"testing/quick"

	"repro/internal/types"
)

func TestColorDominance(t *testing.T) {
	if !Red.Dominates(Black) || !Black.Dominates(Yellow) || !Red.Dominates(Yellow) {
		t.Error("dominance order broken")
	}
	if Yellow.Dominates(Black) || Black.Dominates(Red) {
		t.Error("reverse dominance allowed")
	}
}

func TestSetColorOnlyUpgrades(t *testing.T) {
	g := New()
	v := g.Add(&Vertex{Type: VSend, Host: "a", Msg: &types.Message{Src: "a", Dst: "b", Seq: 1}, Color: Yellow})
	g.SetColor(v, Black)
	if v.Color != Black {
		t.Fatalf("color = %s, want black", v.Color)
	}
	g.SetColor(v, Yellow)
	if v.Color != Black {
		t.Error("color downgraded to yellow")
	}
	g.SetColor(v, Red)
	if v.Color != Red {
		t.Error("red upgrade refused")
	}
	g.SetColor(v, Black)
	if v.Color != Red {
		t.Error("red downgraded to black (violates Theorem 1 proof)")
	}
}

func TestIllegalEdgeRejected(t *testing.T) {
	g := New()
	tup := types.MakeTuple("x", types.N("a"))
	ins := g.Add(&Vertex{Type: VInsert, Host: "a", Tuple: tup, T1: 1})
	del := g.Add(&Vertex{Type: VDelete, Host: "a", Tuple: tup, T1: 2})
	if err := g.AddEdge(ins, del); err == nil {
		t.Error("insert → delete edge accepted")
	}
}

// TestEdgeTableInvariant checks Table 1 of the paper: exactly the listed
// type pairs are legal (plus the documented disappear→appear constraint
// extension).
func TestEdgeTableInvariant(t *testing.T) {
	want := map[[2]VertexType]bool{
		{VInsert, VAppear}:             true,
		{VDelete, VDisappear}:          true,
		{VAppear, VExist}:              true,
		{VAppear, VSend}:               true,
		{VAppear, VDerive}:             true,
		{VDisappear, VExist}:           true,
		{VDisappear, VSend}:            true,
		{VDisappear, VUnderive}:        true,
		{VDisappear, VAppear}:          true, // §3.4 constraint extension
		{VExist, VDerive}:              true,
		{VExist, VUnderive}:            true,
		{VDerive, VAppear}:             true,
		{VUnderive, VDisappear}:        true,
		{VSend, VReceive}:              true,
		{VReceive, VBelieveAppear}:     true,
		{VReceive, VBelieveDisappear}:  true,
		{VBelieveAppear, VBelieve}:     true,
		{VBelieveAppear, VDerive}:      true,
		{VBelieveDisappear, VBelieve}:  true,
		{VBelieveDisappear, VUnderive}: true,
		{VBelieve, VDerive}:            true,
		{VBelieve, VUnderive}:          true,
	}
	for a := VInsert; a <= VBelieve; a++ {
		for b := VInsert; b <= VBelieve; b++ {
			if got := LegalEdge(a, b); got != want[[2]VertexType{a, b}] {
				t.Errorf("LegalEdge(%s, %s) = %v, want %v", a, b, got, !got)
			}
		}
	}
}

func TestOpenIntervalIndices(t *testing.T) {
	g := New()
	tup := types.MakeTuple("x", types.N("a"), types.I(1))
	e := g.Add(&Vertex{Type: VExist, Host: "a", Tuple: tup, T1: 1, T2: Forever})
	if g.OpenExist("a", tup) != e {
		t.Fatal("open exist not indexed")
	}
	g.CloseInterval(e, 9)
	if g.OpenExist("a", tup) != nil {
		t.Fatal("closed exist still indexed")
	}
	if e.T2 != 9 {
		t.Fatalf("T2 = %d, want 9", e.T2)
	}

	b1 := g.Add(&Vertex{Type: VBelieve, Host: "a", Remote: "zz", Tuple: tup, T1: 1, T2: Forever})
	b2 := g.Add(&Vertex{Type: VBelieve, Host: "a", Remote: "bb", Tuple: tup, T1: 2, T2: Forever})
	_ = b1
	// Any-origin lookup must be deterministic: smallest origin wins.
	if got := g.OpenBelieveAny("a", tup); got != b2 {
		t.Fatalf("OpenBelieveAny picked %v, want origin bb", got)
	}
	if got := g.OpenBelieve("a", "zz", tup); got != b1 {
		t.Fatalf("OpenBelieve(zz) = %v", got)
	}
}

func TestAddDeduplicates(t *testing.T) {
	g := New()
	tup := types.MakeTuple("x", types.N("a"))
	v1 := g.Add(&Vertex{Type: VAppear, Host: "a", Tuple: tup, T1: 5})
	v2 := g.Add(&Vertex{Type: VAppear, Host: "a", Tuple: tup, T1: 5})
	if v1 != v2 {
		t.Error("duplicate vertex inserted")
	}
	if g.Len() != 1 {
		t.Errorf("Len = %d, want 1", g.Len())
	}
}

func TestSubgraphReflexiveAndStrict(t *testing.T) {
	b := build(t, correctHistory())
	if !b.G.Subgraph(b.G) {
		t.Error("graph is not a subgraph of itself")
	}
	empty := New()
	if !empty.Subgraph(b.G) {
		t.Error("empty graph is not a subgraph")
	}
	if b.G.Subgraph(empty) {
		t.Error("non-empty graph is a subgraph of empty")
	}
}

func TestProjectHostsOnly(t *testing.T) {
	b := build(t, correctHistory())
	p := b.G.Project("n1")
	for _, v := range p.Vertices() {
		if v.Host != "n1" && v.Type != VSend && v.Type != VReceive {
			t.Errorf("projection contains foreign vertex %s", v)
		}
	}
	if err := p.Validate(); err != nil {
		t.Errorf("projection invalid: %v", err)
	}
}

func TestVertexIDStableQuick(t *testing.T) {
	f := func(rel string, k int64, at int64) bool {
		tup := types.MakeTuple(rel, types.N("h"), types.I(k))
		a := &Vertex{Type: VAppear, Host: "h", Tuple: tup, T1: types.Time(at)}
		b := &Vertex{Type: VAppear, Host: "h", Tuple: tup, T1: types.Time(at)}
		return a.ID() == b.ID()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLabels(t *testing.T) {
	tup := types.MakeTuple("bestCost", types.N("c"), types.N("d"), types.I(5))
	v := &Vertex{Type: VExist, Host: "c", Tuple: tup, T1: 3, T2: Forever}
	if got, want := v.Label(), "EXIST(c, bestCost(@c,@d,5), [t3, now])"; got != want {
		t.Errorf("Label = %q, want %q", got, want)
	}
}
