package provgraph

import (
	"fmt"
	"testing"

	"repro/internal/types"
)

// testMachine is a tiny deterministic state machine used to exercise the
// GCA. Behavior:
//   - ins base(@self, k)  → derive out(@peer, k) via rule R and send +out
//   - del base(@self, k)  → underive out(@peer, k) and send −out
//   - rcv +out(@self, k)  → derive got(@self, k) via rule S
//   - rcv −out(@self, k)  → underive got(@self, k)
type testMachine struct {
	self types.NodeID
	peer types.NodeID
	seq  uint64
}

func newTestMachine(peer types.NodeID) types.MachineFactory {
	return func(self types.NodeID) types.Machine {
		return &testMachine{self: self, peer: peer}
	}
}

func outTuple(peer types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("out", types.N(peer), types.I(k))
}

func gotTuple(self types.NodeID, k int64) types.Tuple {
	return types.MakeTuple("got", types.N(self), types.I(k))
}

func (m *testMachine) Step(ev types.Event) []types.Output {
	switch ev.Kind {
	case types.EvIns:
		if ev.Tuple.Rel != "base" {
			return nil
		}
		k := ev.Tuple.Args[1].Int
		out := outTuple(m.peer, k)
		m.seq++
		msg := &types.Message{Src: m.self, Dst: m.peer, Pol: types.PolAppear,
			Tuple: out, SendTime: ev.Time, Seq: m.seq}
		return []types.Output{
			{Kind: types.OutDerive, Tuple: out, Rule: "R", Body: []types.Tuple{ev.Tuple}, First: true},
			{Kind: types.OutSend, Msg: msg},
		}
	case types.EvDel:
		if ev.Tuple.Rel != "base" {
			return nil
		}
		k := ev.Tuple.Args[1].Int
		out := outTuple(m.peer, k)
		m.seq++
		msg := &types.Message{Src: m.self, Dst: m.peer, Pol: types.PolDisappear,
			Tuple: out, SendTime: ev.Time, Seq: m.seq}
		return []types.Output{
			{Kind: types.OutUnderive, Tuple: out, Rule: "R", Body: []types.Tuple{ev.Tuple}, Last: true},
			{Kind: types.OutSend, Msg: msg},
		}
	case types.EvRcv:
		if ev.Msg.Tuple.Rel != "out" {
			return nil
		}
		k := ev.Msg.Tuple.Args[1].Int
		got := gotTuple(m.self, k)
		if ev.Msg.Pol == types.PolAppear {
			return []types.Output{{Kind: types.OutDerive, Tuple: got, Rule: "S",
				Body: []types.Tuple{ev.Msg.Tuple}, First: true}}
		}
		return []types.Output{{Kind: types.OutUnderive, Tuple: got, Rule: "S",
			Body: []types.Tuple{ev.Msg.Tuple}, Last: true}}
	}
	return nil
}

func (m *testMachine) Snapshot() []byte { return []byte(fmt.Sprintf("%d", m.seq)) }
func (m *testMachine) Restore(s []byte) error {
	_, err := fmt.Sscanf(string(s), "%d", &m.seq)
	return err
}

// history builds the canonical correct two-node history: n1 inserts
// base(@n1,1) at t=10, the resulting +out reaches n2 at t=20 and is acked.
func correctHistory() []types.Event {
	msg := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 1), SendTime: 10, Seq: 1}
	id := msg.ID()
	return []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: types.MakeTuple("base", types.N("n1"), types.I(1))},
		{Kind: types.EvSnd, Node: "n1", Time: 10, Msg: msg},
		{Kind: types.EvRcv, Node: "n2", Time: 20, Msg: msg},
		{Kind: types.EvSnd, Node: "n2", Time: 20, AckID: &id, AckTime: 20},
		{Kind: types.EvRcv, Node: "n1", Time: 30, AckID: &id, AckTime: 20},
	}
}

func build(t *testing.T, events []types.Event) *Builder {
	t.Helper()
	b := NewBuilder(newTestMachine("n2"), 100)
	for _, ev := range events {
		b.HandleEvent(ev)
	}
	if err := b.G.Validate(); err != nil {
		t.Fatalf("graph invalid: %v", err)
	}
	return b
}

func TestCorrectFlowVertices(t *testing.T) {
	b := build(t, correctHistory())
	g := b.G

	// base appears at n1, out appears at n1 (and is shipped), got appears
	// at n2 — three appear/exist pairs, two derives (R at n1, S at n2).
	wantTypes := map[VertexType]int{
		VInsert: 1, VAppear: 3, VExist: 3, VDerive: 2, VSend: 1,
		VReceive: 1, VBelieveAppear: 1, VBelieve: 1,
	}
	got := map[VertexType]int{}
	for _, v := range g.Vertices() {
		got[v.Type]++
	}
	for ty, n := range wantTypes {
		if got[ty] != n {
			t.Errorf("vertex count %s = %d, want %d", ty, got[ty], n)
		}
	}
	// Everything must be black after acknowledgment (Theorem 3 / Lemma 2).
	for _, v := range g.Vertices() {
		if v.Color != Black {
			t.Errorf("vertex %s is %s, want black", v, v.Color)
		}
	}
}

func TestCorrectFlowEdges(t *testing.T) {
	b := build(t, correctHistory())
	g := b.G

	// Walk backwards from got(@n2,1)'s exist vertex to the base insert.
	exist := g.OpenExist("n2", gotTuple("n2", 1))
	if exist == nil {
		t.Fatal("no open exist vertex for got(@n2,1)")
	}
	// exist ← appear ← derive ← believe-appear ← receive ← send ← appear ←
	// derive ← insert... follow single-predecessor chain.
	path := []VertexType{VExist, VAppear, VDerive, VBelieveAppear, VReceive, VSend, VAppear, VDerive, VAppear, VInsert}
	v := exist
	for i, want := range path {
		if v.Type != want {
			t.Fatalf("step %d: vertex %s, want type %s", i, v, want)
		}
		if i == len(path)-1 {
			break
		}
		if len(v.In()) == 0 {
			t.Fatalf("step %d: vertex %s has no predecessors", i, v)
		}
		// Prefer the predecessor matching the expected chain.
		var next *Vertex
		for _, w := range v.In() {
			if w.Type == path[i+1] {
				next = w
				break
			}
		}
		if next == nil {
			t.Fatalf("step %d: vertex %s has no %s predecessor (has %v)", i, v, path[i+1], v.In())
		}
		v = next
	}
}

func TestSuppressedSendTurnsRed(t *testing.T) {
	// n1 inserts base (machine wants to send +out) but the history shows no
	// snd; the next event on n1 must flag the pending send red (Lemma 3,
	// case 4).
	events := []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: types.MakeTuple("base", types.N("n1"), types.I(1))},
		{Kind: types.EvIns, Node: "n1", Time: 20, Tuple: types.MakeTuple("base", types.N("n1"), types.I(2))},
	}
	b := build(t, events)
	var redSend int
	for _, v := range b.G.RedVertices() {
		if v.Type == VSend && v.Host == "n1" {
			redSend++
		}
	}
	if redSend != 1 {
		t.Errorf("red send vertices = %d, want 1", redSend)
	}
}

func TestFabricatedSendTurnsRed(t *testing.T) {
	// The history contains a snd the machine never produced (Lemma 3,
	// cases 1/3).
	msg := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 99), SendTime: 10, Seq: 77}
	events := []types.Event{
		{Kind: types.EvSnd, Node: "n1", Time: 10, Msg: msg},
	}
	b := build(t, events)
	sends := 0
	for _, v := range b.G.RedVertices() {
		if v.Type == VSend && v.Host == "n1" {
			sends++
		}
	}
	if sends != 1 {
		t.Errorf("red send vertices = %d, want 1", sends)
	}
}

func TestUnackedReceiveTurnsRed(t *testing.T) {
	// n2 receives a message but the next n2 event is not the ack (Lemma 3,
	// case 2).
	msg := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 1), SendTime: 10, Seq: 1}
	events := []types.Event{
		{Kind: types.EvRcv, Node: "n2", Time: 20, Msg: msg},
		{Kind: types.EvIns, Node: "n2", Time: 25, Tuple: types.MakeTuple("base", types.N("n2"), types.I(5))},
	}
	b := build(t, events)
	found := false
	for _, v := range b.G.RedVertices() {
		if v.Type == VReceive && v.Host == "n2" {
			found = true
		}
	}
	if !found {
		t.Error("expected a red receive vertex on n2")
	}
}

func TestMissingAckFinalize(t *testing.T) {
	// A send that is never acknowledged turns red at Finalize unless the
	// maintainer was notified (§5.4).
	events := correctHistory()[:2] // ins + snd only
	b := build(t, events)
	b.Finalize(map[types.NodeID]types.Time{"n1": 1000})
	reds := b.G.RedVertices()
	if len(reds) != 1 || reds[0].Type != VSend {
		t.Fatalf("red vertices = %v, want one send", reds)
	}

	// With a maintainer notification, the vertex stays yellow.
	b2 := NewBuilder(newTestMachine("n2"), 100)
	b2.MissedAckKnown = func(types.NodeID, types.MessageID) bool { return true }
	for _, ev := range events {
		b2.HandleEvent(ev)
	}
	b2.Finalize(map[types.NodeID]types.Time{"n1": 1000})
	if n := len(b2.G.RedVertices()); n != 0 {
		t.Errorf("red vertices with maintainer notification = %d, want 0", n)
	}
}

func TestDeleteFlow(t *testing.T) {
	msgPlus := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 1), SendTime: 10, Seq: 1}
	msgMinus := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolDisappear,
		Tuple: outTuple("n2", 1), SendTime: 40, Seq: 2}
	idPlus, idMinus := msgPlus.ID(), msgMinus.ID()
	events := []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: types.MakeTuple("base", types.N("n1"), types.I(1))},
		{Kind: types.EvSnd, Node: "n1", Time: 10, Msg: msgPlus},
		{Kind: types.EvRcv, Node: "n2", Time: 20, Msg: msgPlus},
		{Kind: types.EvSnd, Node: "n2", Time: 20, AckID: &idPlus, AckTime: 20},
		{Kind: types.EvRcv, Node: "n1", Time: 30, AckID: &idPlus, AckTime: 20},
		{Kind: types.EvDel, Node: "n1", Time: 40, Tuple: types.MakeTuple("base", types.N("n1"), types.I(1))},
		{Kind: types.EvSnd, Node: "n1", Time: 40, Msg: msgMinus},
		{Kind: types.EvRcv, Node: "n2", Time: 50, Msg: msgMinus},
		{Kind: types.EvSnd, Node: "n2", Time: 50, AckID: &idMinus, AckTime: 50},
		{Kind: types.EvRcv, Node: "n1", Time: 60, AckID: &idMinus, AckTime: 50},
	}
	b := build(t, events)
	g := b.G

	// got(@n2,1) must have existed during [20,50], now closed.
	var exist *Vertex
	for _, v := range g.TupleVertices("n2", gotTuple("n2", 1)) {
		if v.Type == VExist {
			exist = v
		}
	}
	if exist == nil {
		t.Fatal("no exist vertex for got(@n2,1)")
	}
	if exist.T1 != 20 || exist.T2 != 50 {
		t.Errorf("exist interval = [%d,%d], want [20,50]", exist.T1, exist.T2)
	}
	// The believe vertex for out(@n2,1) must also be closed.
	var believe *Vertex
	for _, v := range g.TupleVertices("n2", outTuple("n2", 1)) {
		if v.Type == VBelieve {
			believe = v
		}
	}
	if believe == nil || believe.T2 != 50 {
		t.Fatalf("believe vertex = %v, want closed at 50", believe)
	}
	for _, v := range g.Vertices() {
		if v.Color != Black {
			t.Errorf("vertex %s is %s, want black", v, v.Color)
		}
	}
}

func TestMonotonicity(t *testing.T) {
	// Theorem 1: the graph of every prefix is a subgraph of the full graph.
	events := correctHistory()
	full := build(t, events)
	for n := 0; n <= len(events); n++ {
		prefix := NewBuilder(newTestMachine("n2"), 100)
		for _, ev := range events[:n] {
			prefix.HandleEvent(ev)
		}
		if !prefix.G.Subgraph(full.G) {
			t.Errorf("G(prefix %d) is not a subgraph of G(full)", n)
		}
	}
}

func TestCompositionality(t *testing.T) {
	// Theorem 2: running the GCA on h|i yields G(h)|i.
	events := correctHistory()
	full := build(t, events)
	for _, node := range []types.NodeID{"n1", "n2"} {
		solo := NewBuilder(newTestMachine("n2"), 100)
		for _, ev := range events {
			if ev.Node == node {
				solo.HandleEvent(ev)
			}
		}
		proj := full.G.Project(node)
		// Every vertex of the projection must appear in the solo build and
		// vice versa.
		for _, v := range proj.Vertices() {
			if solo.G.Get(v.ID()) == nil {
				t.Errorf("%s: projection vertex %s missing from solo build", node, v)
			}
		}
		for _, v := range solo.G.Vertices() {
			if proj.Get(v.ID()) == nil {
				t.Errorf("%s: solo vertex %s missing from projection", node, v)
			}
		}
	}
}

func TestMaybeRuleSatisfied(t *testing.T) {
	events := []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 5, Tuple: types.MakeTuple("prereq", types.N("n1"))},
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: types.MakeTuple("choice", types.N("n1")),
			MaybeRule: "M", MaybeBody: []types.Tuple{types.MakeTuple("prereq", types.N("n1"))}},
	}
	b := build(t, events)
	if n := len(b.G.RedVertices()); n != 0 {
		t.Errorf("red vertices = %d, want 0 (maybe body satisfied)", n)
	}
	// The derive vertex must have an edge from prereq's state.
	var derive *Vertex
	for _, v := range b.G.Vertices() {
		if v.Type == VDerive && v.Rule == "M" {
			derive = v
		}
	}
	if derive == nil || len(derive.In()) == 0 {
		t.Fatalf("maybe derive vertex missing or unjustified: %v", derive)
	}
}

func TestMaybeRuleUnsatisfiedTurnsRed(t *testing.T) {
	events := []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: types.MakeTuple("choice", types.N("n1")),
			MaybeRule: "M", MaybeBody: []types.Tuple{types.MakeTuple("prereq", types.N("n1"))}},
	}
	b := build(t, events)
	reds := b.G.RedVertices()
	if len(reds) != 1 || reds[0].Type != VDerive {
		t.Fatalf("red vertices = %v, want one derive", reds)
	}
}

func TestReplacementEdge(t *testing.T) {
	gamma := types.MakeTuple("route", types.N("n1"), types.S("old"))
	delta := types.MakeTuple("route", types.N("n1"), types.S("new"))
	events := []types.Event{
		{Kind: types.EvIns, Node: "n1", Time: 5, Tuple: gamma},
		{Kind: types.EvDel, Node: "n1", Time: 10, Tuple: gamma},
		{Kind: types.EvIns, Node: "n1", Time: 10, Tuple: delta, Replaces: []types.Tuple{gamma}},
	}
	b := build(t, events)
	var disappear, appear *Vertex
	for _, v := range b.G.Vertices() {
		if v.Type == VDisappear && v.Tuple.Equal(gamma) {
			disappear = v
		}
		if v.Type == VAppear && v.Tuple.Equal(delta) {
			appear = v
		}
	}
	if disappear == nil || appear == nil {
		t.Fatal("missing disappear/appear vertices")
	}
	if !b.G.HasEdge(disappear, appear) {
		t.Error("constraint edge disappear(γ) → appear(δ) missing")
	}
}

func TestHandleExtraMsg(t *testing.T) {
	b := build(t, nil)
	m := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 3), SendTime: 7, Seq: 9}
	b.HandleExtraMsg(m)
	reds := b.G.RedVertices()
	if len(reds) != 2 {
		t.Fatalf("red vertices = %d, want 2 (send + receive)", len(reds))
	}
	// A second call must not duplicate or recolor.
	b.HandleExtraMsg(m)
	if len(b.G.RedVertices()) != 2 {
		t.Error("HandleExtraMsg is not idempotent")
	}
}

func TestExtraMsgLeavesExistingAlone(t *testing.T) {
	b := build(t, correctHistory())
	msg := &types.Message{Src: "n1", Dst: "n2", Pol: types.PolAppear,
		Tuple: outTuple("n2", 1), SendTime: 10, Seq: 1}
	b.HandleExtraMsg(msg)
	// The send/receive vertices already exist and are black; they must stay.
	if n := len(b.G.RedVertices()); n != 0 {
		t.Errorf("red vertices = %d, want 0 (message was already explained)", n)
	}
}

func TestSeedExistFromCheckpoint(t *testing.T) {
	b := NewBuilder(newTestMachine("n2"), 100)
	tup := types.MakeTuple("base", types.N("n1"), types.I(1))
	v := b.SeedExist("n1", tup, 3)
	if !v.FromCheckpoint || !v.Open() || v.Color != Black {
		t.Errorf("seeded vertex = %+v", v)
	}
	// Seeding twice returns the same vertex.
	if b.SeedExist("n1", tup, 3) != v {
		t.Error("SeedExist is not idempotent")
	}
}
