package provgraph

import (
	"strings"

	"repro/internal/types"
)

// Builder runs the graph-construction algorithm of Appendix B (Figures
// 10–11) over a history of events, replaying each node's deterministic
// state machine and translating events and machine outputs into provenance
// vertices and edges.
//
// The Builder maintains the four bookkeeping sets of the pseudocode:
//
//	pending  — snd outputs produced by a machine but not yet seen in the
//	           history (a leftover entry means the node suppressed a message)
//	ackpend  — receive vertices whose acknowledgment has not been sent yet
//	unacked  — send vertices whose acknowledgment has not been received yet
//	nopreds  — send vertices with no incoming edge yet
//
// A Builder can process events from many nodes (building the global graph
// G(e)) or from a single node (building the projection G|i; Theorem 2 says
// they agree).
type Builder struct {
	G       *Graph
	factory types.MachineFactory
	tprop   types.Time

	machines map[types.NodeID]types.Machine

	// pending is keyed by full send-vertex identity (content included) so
	// that a logged transmission only matches a machine output with
	// identical payload; ackpend/unacked are keyed by message ID because
	// acknowledgments reference messages by ID. All three are grouped per
	// node with incrementally sorted keys, because they are iterated (in
	// sorted order, filtered by node) on every single event.
	pending map[types.NodeID]*ordmap[string, *Vertex]
	ackpend map[types.NodeID]*ordmap[types.MessageID, *Vertex]
	unacked map[types.NodeID]*ordmap[types.MessageID, *Vertex]
	nopreds map[string]bool

	// MissedAckKnown reports whether the maintainer was notified about a
	// missing acknowledgment (§5.4): if so, an unacked send is left yellow
	// instead of turning red at Finalize time.
	MissedAckKnown func(node types.NodeID, id types.MessageID) bool

	// MaybeValidator, when set, performs the application-specific part of
	// 'maybe' rule validation beyond body existence (e.g. BGP's "the
	// exported path must extend an imported one", §6.3). Returning false
	// colors the firing's derive vertex red.
	MaybeValidator func(rule string, host types.NodeID, head types.Tuple, body []types.Tuple) bool
}

// sendVID computes the send-vertex identity (payload included) a logged
// transmission must match.
func sendVID(m *types.Message) string {
	probe := &Vertex{Type: VSend, Host: m.Src, Remote: m.Dst, Msg: m}
	return probe.ID()
}

// NewBuilder returns a Builder over a fresh graph. factory creates the
// deterministic state machine for each node; tprop is the maximum message
// propagation delay Tprop (§5.2, assumption 4).
func NewBuilder(factory types.MachineFactory, tprop types.Time) *Builder {
	return &Builder{
		G:        New(),
		factory:  factory,
		tprop:    tprop,
		machines: make(map[types.NodeID]types.Machine),
		pending:  make(map[types.NodeID]*ordmap[string, *Vertex]),
		ackpend:  make(map[types.NodeID]*ordmap[types.MessageID, *Vertex]),
		unacked:  make(map[types.NodeID]*ordmap[types.MessageID, *Vertex]),
		nopreds:  make(map[string]bool),
	}
}

func (b *Builder) pendingFor(i types.NodeID) *ordmap[string, *Vertex] {
	om := b.pending[i]
	if om == nil {
		om = newOrdmap[string, *Vertex](strings.Compare)
		b.pending[i] = om
	}
	return om
}

func (b *Builder) ackpendFor(i types.NodeID) *ordmap[types.MessageID, *Vertex] {
	om := b.ackpend[i]
	if om == nil {
		om = newOrdmap[types.MessageID, *Vertex](cmpMessageID)
		b.ackpend[i] = om
	}
	return om
}

func (b *Builder) unackedFor(i types.NodeID) *ordmap[types.MessageID, *Vertex] {
	om := b.unacked[i]
	if om == nil {
		om = newOrdmap[types.MessageID, *Vertex](cmpMessageID)
		b.unacked[i] = om
	}
	return om
}

// delUnackedIf removes node's unacked entry for id if it is exactly v.
func (b *Builder) delUnackedIf(node types.NodeID, id types.MessageID, v *Vertex) {
	if om := b.unacked[node]; om != nil {
		if cur, ok := om.get(id); ok && cur == v {
			om.del(id)
		}
	}
}

// MachineFor returns (creating if necessary) the state machine for node id.
func (b *Builder) MachineFor(id types.NodeID) types.Machine {
	m, ok := b.machines[id]
	if !ok {
		m = b.factory(id)
		b.machines[id] = m
	}
	return m
}

// RestoreMachine initializes node id's machine from a checkpoint snapshot.
func (b *Builder) RestoreMachine(id types.NodeID, snapshot []byte) error {
	return b.MachineFor(id).Restore(snapshot)
}

// SeedExist records, without provenance, that tuple existed on host since
// appeared — used when replay starts from a checkpoint (§5.6). The vertex is
// marked FromCheckpoint; its causes live in an earlier log segment.
func (b *Builder) SeedExist(host types.NodeID, tup types.Tuple, appeared types.Time) *Vertex {
	if v := b.G.OpenExist(host, tup); v != nil {
		return v
	}
	v := &Vertex{Type: VExist, Host: host, Tuple: tup, T1: appeared, T2: Forever,
		Color: Black, FromCheckpoint: true}
	return b.G.Add(v)
}

// SeedBelieve is SeedExist for a believed remote tuple.
func (b *Builder) SeedBelieve(host, origin types.NodeID, tup types.Tuple, appeared types.Time) *Vertex {
	if v := b.G.OpenBelieve(host, origin, tup); v != nil {
		return v
	}
	v := &Vertex{Type: VBelieve, Host: host, Remote: origin, Tuple: tup,
		T1: appeared, T2: Forever, Color: Black, FromCheckpoint: true}
	return b.G.Add(v)
}

// StepsMachine reports whether the GCA feeds ev to the node's state machine:
// snd events are checked against machine outputs instead, and acknowledgments
// are transport-level.
func StepsMachine(ev types.Event) bool {
	return ev.Kind != types.EvSnd && !ev.IsAck()
}

// HandleEvent processes one history event: steps 3–5 of the GCA main loop.
// Events must be presented in per-node chronological order.
func (b *Builder) HandleEvent(ev types.Event) {
	b.applyEventGraph(ev)
	if !StepsMachine(ev) {
		return
	}
	outs := b.MachineFor(ev.Node).Step(ev)
	for _, out := range outs {
		b.handleOutput(ev.Node, out, ev.Time)
	}
}

// ApplyReplayed is HandleEvent with the machine outputs precomputed by a
// replica machine (the parallel audit pipeline's verify/decode phase runs the
// deterministic machine off-thread and hands the outputs here). The graph
// bookkeeping is identical to HandleEvent; the Builder's own machine for the
// node is not stepped — the caller installs the fully replayed replica via
// InstallMachine when its node's commit completes.
func (b *Builder) ApplyReplayed(ev types.Event, outs []types.Output) {
	b.applyEventGraph(ev)
	for _, out := range outs {
		b.handleOutput(ev.Node, out, ev.Time)
	}
}

// applyEventGraph runs the event-side graph bookkeeping (Figure 11, left
// column) without stepping any machine.
func (b *Builder) applyEventGraph(ev types.Event) {
	switch ev.Kind {
	case types.EvIns:
		b.handleEventIns(ev)
	case types.EvDel:
		b.handleEventDel(ev)
	case types.EvSnd:
		b.handleEventSnd(ev)
	case types.EvRcv:
		b.handleEventRcv(ev)
	}
}

// InstallMachine adopts a machine replayed elsewhere (a parallel audit
// worker's replica) as node id's machine, replacing any existing one.
func (b *Builder) InstallMachine(id types.NodeID, m types.Machine) {
	b.machines[id] = m
}

// Finalize flags leftover bookkeeping at the end of a complete history
// prefix: machine outputs that were never sent (suppression), receives that
// were never acknowledged, and sends whose acknowledgment did not arrive
// within 2·Tprop and for which the maintainer was not notified. end gives
// each node's final local time.
func (b *Builder) Finalize(end map[types.NodeID]types.Time) {
	for _, node := range sortedNodeKeys(b.pending) {
		om := b.pending[node]
		for _, vid := range om.snapshot() {
			v, _ := om.get(vid)
			b.G.SetColor(v, Red)
			om.del(vid)
			b.delUnackedIf(node, v.Msg.ID(), v)
		}
	}
	for _, node := range sortedNodeKeys(b.ackpend) {
		om := b.ackpend[node]
		for _, id := range om.snapshot() {
			v, _ := om.get(id)
			b.G.SetColor(v, Red)
			om.del(id)
		}
	}
	for _, node := range sortedNodeKeys(b.unacked) {
		om := b.unacked[node]
		t, okT := end[node]
		for _, id := range om.snapshot() {
			v, _ := om.get(id)
			if !okT || v.T1 >= t-2*b.tprop {
				continue // too recent to judge
			}
			if b.MissedAckKnown != nil && b.MissedAckKnown(node, id) {
				// The sender reported the missing ack; the fault is known and
				// cannot be attributed to the sender (§5.4).
				om.del(id)
				continue
			}
			b.G.SetColor(v, Red)
			om.del(id)
		}
	}
}

// HandleExtraMsg processes evidence of a message that is inconsistent with
// the retrieved logs (equivocation, or a log that denies a send the querier
// holds proof of). Both endpoints' vertices are created red unless already
// present (Figure 11, handle-extra-msg).
func (b *Builder) HandleExtraMsg(m *types.Message) {
	b.addRedUnlessPresent(&Vertex{Type: VSend, Host: m.Src, Remote: m.Dst, Msg: m, T1: m.SendTime})
	b.addRedUnlessPresent(&Vertex{Type: VReceive, Host: m.Dst, Remote: m.Src, Msg: m, T1: m.SendTime})
}

func (b *Builder) addRedUnlessPresent(v *Vertex) {
	if b.G.Get(v.ID()) == nil {
		v.Color = Red
		b.G.Add(v)
	}
}

// ---------------------------------------------------------------------------
// Event handlers (Figure 11, left column).

func (b *Builder) handleEventIns(ev types.Event) {
	b.flagAllPending(ev.Node, ev.Time)
	var vwhy *Vertex
	if ev.MaybeRule == "" {
		vwhy = b.G.Add(&Vertex{Type: VInsert, Host: ev.Node, Tuple: ev.Tuple, T1: ev.Time, Color: Black})
	} else {
		// A 'maybe' rule firing (§3.4): provenance is a derive vertex whose
		// body tuples must all be present; a missing body tuple means the
		// node fired a maybe rule it was not entitled to, which is provable
		// misbehavior, so the vertex turns red.
		vwhy = b.deriveVertex(ev.Node, ev.Tuple, ev.MaybeRule, ev.MaybeBody, ev.Time, true)
		if b.MaybeValidator != nil && !b.MaybeValidator(ev.MaybeRule, ev.Node, ev.Tuple, ev.MaybeBody) {
			b.G.SetColor(vwhy, Red)
		}
	}
	b.appearLocalTuple(ev.Node, ev.Tuple, vwhy, ev.Time, ev.Replaces)
}

func (b *Builder) handleEventDel(ev types.Event) {
	b.flagAllPending(ev.Node, ev.Time)
	var vwhy *Vertex
	if ev.MaybeRule == "" {
		vwhy = b.G.Add(&Vertex{Type: VDelete, Host: ev.Node, Tuple: ev.Tuple, T1: ev.Time, Color: Black})
	} else {
		vwhy = b.underiveVertex(ev.Node, ev.Tuple, ev.MaybeRule, ev.MaybeBody, ev.Time)
	}
	b.disappearLocalTuple(ev.Node, ev.Tuple, vwhy, ev.Time)
}

func (b *Builder) handleEventSnd(ev types.Event) {
	i := ev.Node
	if ev.IsAck() {
		// i acknowledges a message it received earlier: the receive vertex
		// is no longer provisional.
		if om := b.ackpend[i]; om != nil {
			if v1, ok := om.get(*ev.AckID); ok {
				om.del(*ev.AckID)
				b.G.SetColor(v1, Black)
			}
		}
		b.flagAckpend(i)
		return
	}
	m := ev.Msg
	vid := sendVID(m)
	if om := b.pending[i]; om != nil {
		if _, ok := om.get(vid); ok {
			// The send was produced by the machine with identical content:
			// legitimate.
			om.del(vid)
			b.flagAckpend(i)
			return
		}
	}
	// The history records a transmission the machine never produced:
	// fabricated traffic (Lemma 3, cases 1 and 3).
	v2 := b.addSendVertex(m, nil, ev.Time)
	b.delUnackedIf(i, m.ID(), v2)
	b.G.SetColor(v2, Red)
	b.flagAckpend(i)
}

func (b *Builder) handleEventRcv(ev types.Event) {
	i := ev.Node
	if !ev.SameBatch {
		b.flagAllPending(i, ev.Time)
	}
	if ev.IsAck() {
		// i received an acknowledgment for its own message: the ack proves
		// the peer received it, so the peer's receive vertex exists and i's
		// send vertex turns black.
		om := b.unacked[i]
		if om == nil {
			return
		}
		v1, ok := om.get(*ev.AckID)
		if !ok {
			return // ack for an unknown message; ignore
		}
		rcv := b.addReceiveVertex(v1.Msg, ev.AckTime)
		_ = rcv
		om.del(*ev.AckID)
		b.G.SetColor(v1, Black)
		return
	}
	m := ev.Msg
	v1 := b.addReceiveVertex(m, ev.Time)
	b.ackpendFor(i).set(m.ID(), v1)
	switch m.Pol {
	case types.PolAppear:
		b.appearRemoteTuple(i, m.Tuple, m.Src, v1, ev.Time)
	case types.PolDisappear:
		b.disappearRemoteTuple(i, m.Tuple, m.Src, v1, ev.Time)
	case types.PolBoth:
		// Transient event tuple: it appears and immediately disappears.
		b.appearRemoteTuple(i, m.Tuple, m.Src, v1, ev.Time)
		b.disappearRemoteTuple(i, m.Tuple, m.Src, v1, ev.Time)
	}
}

// ---------------------------------------------------------------------------
// Output handlers (Figure 11, right column).

func (b *Builder) handleOutput(i types.NodeID, out types.Output, t types.Time) {
	switch out.Kind {
	case types.OutDerive:
		v1 := b.deriveVertex(i, out.Tuple, out.Rule, out.Body, t, false)
		if out.First {
			b.appearLocalTuple(i, out.Tuple, v1, t, out.Replaces)
		} else if ap := b.G.FirstInstant(VAppear, i, out.Tuple, t); ap != nil {
			// Additional simultaneous derivation of an extant tuple.
			_ = b.G.AddEdge(v1, ap)
		} else {
			// The tuple already existed; give this derivation its own
			// appear vertex feeding the shared open exist vertex, as in
			// Figure 2 (one EXIST fed by two DERIVEs).
			b.appearLocalTuple(i, out.Tuple, v1, t, nil)
		}
	case types.OutUnderive:
		v1 := b.underiveVertex(i, out.Tuple, out.Rule, out.Body, t)
		if out.Last {
			b.disappearLocalTuple(i, out.Tuple, v1, t)
		}
	case types.OutSend:
		m := out.Msg
		var vwhy *Vertex
		if m.Pol == types.PolDisappear {
			vwhy = b.G.FirstInstant(VDisappear, i, m.Tuple, t)
		} else {
			vwhy = b.G.FirstInstant(VAppear, i, m.Tuple, t)
		}
		v1 := b.addSendVertex(m, vwhy, t)
		b.pendingFor(i).set(sendVID(m), v1)
	}
}

// deriveVertex creates a derive vertex and connects it to the vertices that
// justify each body tuple, preferring the state change that triggered the
// rule at this instant (believe-appear, then appear) and falling back to the
// extant state (open believe, then open exist), exactly as in
// handle-output-der. When maybeCheck is set and a body tuple has no
// justification, the vertex turns red (invalid maybe firing).
func (b *Builder) deriveVertex(i types.NodeID, tup types.Tuple, rule string, body []types.Tuple, t types.Time, maybeCheck bool) *Vertex {
	v1 := b.G.Add(&Vertex{Type: VDerive, Host: i, Tuple: tup, Rule: rule,
		Remote: bodyFingerprint(body), T1: t, Color: Black})
	for _, tx := range body {
		vb := b.bodyAppearJustification(i, tx, t)
		if vb == nil {
			if maybeCheck {
				b.G.SetColor(v1, Red)
				continue
			}
			// Fall back to an open exist vertex of unknown origin (the
			// pseudocode's implicit exist(i, τx, [?, ∞)); arises only when
			// replay starts from a checkpoint).
			vb = b.SeedExist(i, tx, t)
		}
		_ = b.G.AddEdge(vb, v1)
	}
	return v1
}

func (b *Builder) bodyAppearJustification(i types.NodeID, tx types.Tuple, t types.Time) *Vertex {
	if v := b.G.FirstInstant(VBelieveAppear, i, tx, t); v != nil {
		return v
	}
	if v := b.G.FirstInstant(VAppear, i, tx, t); v != nil {
		return v
	}
	if v := b.G.OpenBelieveAny(i, tx); v != nil {
		return v
	}
	if v := b.G.OpenExist(i, tx); v != nil {
		return v
	}
	return nil
}

func (b *Builder) underiveVertex(i types.NodeID, tup types.Tuple, rule string, body []types.Tuple, t types.Time) *Vertex {
	v1 := b.G.Add(&Vertex{Type: VUnderive, Host: i, Tuple: tup, Rule: rule,
		Remote: bodyFingerprint(body), T1: t, Color: Black})
	for _, tx := range body {
		var vb *Vertex
		if vb = b.G.FirstInstant(VBelieveDisappear, i, tx, t); vb == nil {
			if vb = b.G.FirstInstant(VDisappear, i, tx, t); vb == nil {
				if vb = b.G.OpenBelieveAny(i, tx); vb == nil {
					if vb = b.G.OpenExist(i, tx); vb == nil {
						vb = b.SeedExist(i, tx, t)
					}
				}
			}
		}
		_ = b.G.AddEdge(vb, v1)
	}
	return v1
}

// bodyFingerprint distinguishes derive vertices for distinct rule firings
// of the same rule, tuple, and instant. It is stored in the vertex's Remote
// field, which derive/underive vertices do not otherwise use.
func bodyFingerprint(body []types.Tuple) types.NodeID {
	s := ""
	for _, t := range body {
		s += t.Key() + ";"
	}
	return types.NodeID(s)
}

// ---------------------------------------------------------------------------
// Library functions (Figure 10).

func (b *Builder) appearLocalTuple(i types.NodeID, tup types.Tuple, vwhy *Vertex, t types.Time, replaces []types.Tuple) {
	v1 := b.G.Add(&Vertex{Type: VAppear, Host: i, Tuple: tup, T1: t, Color: Black})
	v2 := b.G.OpenExist(i, tup)
	if v2 == nil {
		v2 = b.G.Add(&Vertex{Type: VExist, Host: i, Tuple: tup, T1: t, T2: Forever, Color: Black})
	}
	if vwhy != nil {
		_ = b.G.AddEdge(vwhy, v1)
	}
	_ = b.G.AddEdge(v1, v2)
	for _, gone := range replaces {
		if d := b.G.FirstInstant(VDisappear, i, gone, t); d != nil {
			// §3.4 constraint edge: the replaced tuple's disappearance is
			// part of this tuple's provenance.
			_ = b.G.AddEdge(d, v1)
		}
	}
}

func (b *Builder) disappearLocalTuple(i types.NodeID, tup types.Tuple, vwhy *Vertex, t types.Time) {
	v1 := b.G.Add(&Vertex{Type: VDisappear, Host: i, Tuple: tup, T1: t, Color: Black})
	if vwhy != nil {
		_ = b.G.AddEdge(vwhy, v1)
	}
	if v2 := b.G.OpenExist(i, tup); v2 != nil {
		_ = b.G.AddEdge(v1, v2)
		b.G.CloseInterval(v2, t)
	}
}

func (b *Builder) appearRemoteTuple(i types.NodeID, tup types.Tuple, j types.NodeID, vwhy *Vertex, t types.Time) {
	v1 := b.G.Add(&Vertex{Type: VBelieveAppear, Host: i, Remote: j, Tuple: tup, T1: t, Color: Black})
	v2 := b.G.OpenBelieve(i, j, tup)
	if v2 == nil {
		v2 = b.G.Add(&Vertex{Type: VBelieve, Host: i, Remote: j, Tuple: tup, T1: t, T2: Forever, Color: Black})
	}
	if vwhy != nil {
		_ = b.G.AddEdge(vwhy, v1)
	}
	_ = b.G.AddEdge(v1, v2)
}

func (b *Builder) disappearRemoteTuple(i types.NodeID, tup types.Tuple, j types.NodeID, vwhy *Vertex, t types.Time) {
	v1 := b.G.Add(&Vertex{Type: VBelieveDisappear, Host: i, Remote: j, Tuple: tup, T1: t, Color: Black})
	if vwhy != nil {
		_ = b.G.AddEdge(vwhy, v1)
	}
	if v2 := b.G.OpenBelieve(i, j, tup); v2 != nil {
		_ = b.G.AddEdge(v1, v2)
		b.G.CloseInterval(v2, t)
	}
}

func (b *Builder) flagAllPending(i types.NodeID, t types.Time) {
	b.flagAckpend(i)
	if om := b.pending[i]; om != nil && om.size() > 0 {
		for _, vid := range om.snapshot() {
			v, _ := om.get(vid)
			b.G.SetColor(v, Red)
			om.del(vid)
			b.delUnackedIf(i, v.Msg.ID(), v)
		}
	}
	if om := b.unacked[i]; om != nil && om.size() > 0 {
		for _, id := range om.snapshot() {
			v2, _ := om.get(id)
			if v2.T1 >= t-2*b.tprop {
				continue
			}
			if b.MissedAckKnown != nil && b.MissedAckKnown(i, id) {
				// The sender reported the missing ack in time (§5.4): the
				// fault lies with the receiver or the channel, and the send
				// stays yellow — red here would accuse the honest sender,
				// exactly what the report exists to prevent.
				om.del(id)
				continue
			}
			b.G.SetColor(v2, Red)
			om.del(id)
		}
	}
}

func (b *Builder) flagAckpend(i types.NodeID) {
	om := b.ackpend[i]
	if om == nil || om.size() == 0 {
		return
	}
	for _, id := range om.snapshot() {
		v, _ := om.get(id)
		b.G.SetColor(v, Red)
		om.del(id)
	}
}

func (b *Builder) addSendVertex(m *types.Message, vwhy *Vertex, t types.Time) *Vertex {
	probe := &Vertex{Type: VSend, Host: m.Src, Remote: m.Dst, Msg: m, T1: t}
	v1 := b.G.Get(probe.ID())
	if v1 == nil {
		probe.Color = Yellow
		v1 = b.G.Add(probe)
		b.nopreds[v1.ID()] = true
		b.unackedFor(m.Src).set(m.ID(), v1)
	}
	if b.nopreds[v1.ID()] && vwhy != nil {
		_ = b.G.AddEdge(vwhy, v1)
		delete(b.nopreds, v1.ID())
	}
	return v1
}

func (b *Builder) addReceiveVertex(m *types.Message, t types.Time) *Vertex {
	send := b.addSendVertex(m, nil, m.SendTime)
	probe := &Vertex{Type: VReceive, Host: m.Dst, Remote: m.Src, Msg: m, T1: t}
	v1 := b.G.Get(probe.ID())
	if v1 == nil {
		probe.Color = Yellow
		v1 = b.G.Add(probe)
	}
	_ = b.G.AddEdge(send, v1)
	return v1
}
