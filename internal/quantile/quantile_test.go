package quantile

import (
	"testing"
	"time"
)

// TestNearestRankSmallCounts pins the small-N cases the old index formulas
// (len/2 for p50, len*99/100 for p99) got wrong. With two samples the old
// p50 was durs[1] — the max; nearest-rank says the median of {10, 20} is
// 10. This test fails against the old formulas and passes against
// nearest-rank.
func TestNearestRankSmallCounts(t *testing.T) {
	ms := func(v int) time.Duration { return time.Duration(v) * time.Millisecond }

	two := []time.Duration{ms(10), ms(20)}
	if got := Duration(two, 50); got != ms(10) {
		t.Errorf("p50 of {10ms, 20ms} = %v, want 10ms (old formula returned the max)", got)
	}
	if got := Duration(two, 99); got != ms(20) {
		t.Errorf("p99 of {10ms, 20ms} = %v, want 20ms", got)
	}

	one := []time.Duration{ms(7)}
	if got := Duration(one, 50); got != ms(7) {
		t.Errorf("p50 of a single sample = %v, want 7ms", got)
	}
	if got := Duration(one, 99); got != ms(7) {
		t.Errorf("p99 of a single sample = %v, want 7ms", got)
	}

	if got := Duration(nil, 50); got != 0 {
		t.Errorf("p50 of no samples = %v, want 0", got)
	}

	// Odd count: the median must be the middle element.
	five := []time.Duration{ms(5), ms(1), ms(4), ms(2), ms(3)} // unsorted on purpose
	if got := Duration(five, 50); got != ms(3) {
		t.Errorf("p50 of 1..5ms = %v, want 3ms", got)
	}
	if five[0] != ms(5) {
		t.Error("Duration modified its input slice")
	}

	// N=100: p99 is the 99th value, not the 100th.
	hundred := make([]time.Duration, 100)
	for i := range hundred {
		hundred[i] = ms(i + 1)
	}
	if got := Duration(hundred, 99); got != ms(99) {
		t.Errorf("p99 of 1..100ms = %v, want 99ms", got)
	}
	if got := Duration(hundred, 50); got != ms(50) {
		t.Errorf("p50 of 1..100ms = %v, want 50ms", got)
	}
}

func TestRankBounds(t *testing.T) {
	if Rank(0, 50) != 0 {
		t.Error("Rank(0, 50) != 0")
	}
	if Rank(10, 0) != 0 {
		t.Error("Rank(10, 0) should clamp to the first sample")
	}
	if Rank(10, 100) != 9 {
		t.Error("Rank(10, 100) should be the last sample")
	}
	if Rank(10, 200) != 9 {
		t.Error("Rank(10, 200) should clamp to the last sample")
	}
}
