// Package quantile computes nearest-rank percentiles over latency samples.
//
// The eval qps harness and the query frontend both report p50/p99 over
// small sample counts, where the naive index formulas (len/2, len*99/100)
// misreport: the median of two samples must be the smaller one, not the
// max. Nearest-rank is the standard small-N definition: the p-th
// percentile of N sorted samples is the value at 1-based rank
// ceil(p/100 * N), clamped into [1, N].
package quantile

import (
	"math"
	"sort"
	"time"
)

// Rank returns the 0-based index of the p-th percentile (nearest-rank
// method) in a sorted slice of n samples. It returns 0 for n <= 0 so
// callers can index a non-empty default safely; p is clamped into
// (0, 100].
func Rank(n int, p float64) int {
	if n <= 0 {
		return 0
	}
	r := int(math.Ceil(p / 100 * float64(n)))
	if r < 1 {
		r = 1
	}
	if r > n {
		r = n
	}
	return r - 1
}

// Duration returns the p-th percentile of durs by the nearest-rank
// method, or 0 when durs is empty. It sorts a private copy; the input is
// not modified.
func Duration(durs []time.Duration, p float64) time.Duration {
	if len(durs) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), durs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[Rank(len(sorted), p)]
}

// SortedDuration is Duration for a slice the caller has already sorted
// ascending, avoiding the copy.
func SortedDuration(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[Rank(len(sorted), p)]
}
