package workload

import "testing"

func TestBGPTraceDeterministic(t *testing.T) {
	a := BGPTrace(7, 500, 6, 100)
	b := BGPTrace(7, 500, 6, 100)
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("lengths: %d, %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestBGPTraceWellFormed(t *testing.T) {
	trace := BGPTrace(1, 1000, 4, 50)
	live := map[string]bool{}
	withdraws := 0
	for _, u := range trace {
		if u.Origin < 0 || u.Origin >= 4 {
			t.Fatalf("origin out of range: %v", u)
		}
		if u.Withdraw {
			withdraws++
			if !live[u.Prefix] {
				t.Fatalf("withdraw of unannounced prefix: %v", u)
			}
			delete(live, u.Prefix)
		} else {
			if live[u.Prefix] {
				t.Fatalf("duplicate announce: %v", u)
			}
			live[u.Prefix] = true
		}
	}
	if withdraws == 0 {
		t.Error("trace has no withdrawals")
	}
}

func TestCorpus(t *testing.T) {
	splits := Corpus(3, 5, 2048)
	if len(splits) != 5 {
		t.Fatalf("splits = %d", len(splits))
	}
	for i, s := range splits {
		if len(s) < 2048 {
			t.Errorf("split %d too small: %d bytes", i, len(s))
		}
	}
	again := Corpus(3, 5, 2048)
	for i := range splits {
		if splits[i] != again[i] {
			t.Fatal("corpus not deterministic")
		}
	}
}

func TestCountWord(t *testing.T) {
	if got := CountWord([]string{"a b a", "b a"}, "a"); got != 3 {
		t.Errorf("CountWord = %d, want 3", got)
	}
}
