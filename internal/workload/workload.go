// Package workload generates the synthetic inputs for the evaluation
// (§7.1): a RouteViews-style BGP update trace and a Zipf-distributed text
// corpus standing in for the WebBase Wikipedia crawl. All generators are
// seeded and deterministic.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// BGPUpdate is one trace element.
type BGPUpdate struct {
	// Origin indexes into the set of stub networks.
	Origin int
	Prefix string
	// Withdraw retracts the prefix instead of announcing it.
	Withdraw bool
}

// BGPTrace generates an update trace: announcements with periodic
// withdrawals and re-announcements over a bounded prefix pool, matching the
// announce-heavy mix of public BGP traces.
func BGPTrace(seed int64, updates, origins, prefixPool int) []BGPUpdate {
	rng := rand.New(rand.NewSource(seed))
	announced := make(map[string]int) // prefix -> origin
	out := make([]BGPUpdate, 0, updates)
	for len(out) < updates {
		p := fmt.Sprintf("10.%d.%d.0/24", rng.Intn(prefixPool)/250, rng.Intn(250))
		if o, ok := announced[p]; ok && rng.Intn(100) < 30 {
			// ~30% of updates touching a live prefix are withdrawals.
			out = append(out, BGPUpdate{Origin: o, Prefix: p, Withdraw: true})
			delete(announced, p)
			continue
		}
		if _, ok := announced[p]; ok {
			continue // already announced; try again
		}
		o := rng.Intn(origins)
		announced[p] = o
		out = append(out, BGPUpdate{Origin: o, Prefix: p})
	}
	return out
}

// vocabulary used by the corpus generator; "squirrel" is guaranteed to be
// present so the Figure 4 investigation has a target word.
var baseVocab = []string{
	"the", "of", "and", "to", "in", "a", "is", "was", "for", "on", "as",
	"with", "by", "at", "from", "it", "an", "be", "this", "which", "or",
	"were", "are", "not", "but", "their", "one", "new", "first", "page",
	"history", "world", "city", "state", "war", "time", "system", "network",
	"data", "node", "route", "forest", "park", "river", "squirrel", "fox",
}

// Corpus generates n splits of roughly bytesPerSplit of Zipf-distributed
// text each.
func Corpus(seed int64, n, bytesPerSplit int) []string {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.3, 1.0, uint64(len(baseVocab)-1))
	splits := make([]string, n)
	var sb strings.Builder
	for i := range splits {
		sb.Reset()
		for sb.Len() < bytesPerSplit {
			sb.WriteString(baseVocab[zipf.Uint64()])
			sb.WriteByte(' ')
		}
		splits[i] = sb.String()
	}
	return splits
}

// CountWord counts occurrences of word across splits (ground truth for
// tests).
func CountWord(splits []string, word string) int64 {
	var n int64
	for _, s := range splits {
		for _, w := range strings.Fields(s) {
			if w == word {
				n++
			}
		}
	}
	return n
}
