// Package repro is a from-scratch Go reproduction of "Secure Network
// Provenance" (Zhou et al., SOSP 2011). See README.md for the layout; the
// root package holds the benchmark harness that regenerates the paper's
// evaluation figures (bench_test.go).
package repro
